//! Flat-parallel implementations of single inner computations on the
//! engine.
//!
//! These are what the **inner-parallel** workaround launches once per inner
//! computation (paying a job launch per action per iteration), and what the
//! "ideal" line of the paper's Fig. 1 runs once on the full input.

use matryoshka_engine::{Bag, Engine, Result};

use matryoshka_datagen::Point;

use crate::seq::{nearest_centroid, KmeansParams, PageRankParams};

/// Flat dataflow PageRank over one edge list, with a per-iteration
/// convergence check (one job per iteration — the inner-parallel overhead).
pub fn pagerank(edges: &Bag<(u64, u64)>, params: &PageRankParams) -> Result<Vec<(u64, f64)>> {
    // Rank/contribution messages are small pairs; edge records carry the
    // data weight (see `pagerank::MSG_WEIGHT_FRACTION`).
    let msg_bytes = edges.record_bytes() * crate::pagerank::MSG_WEIGHT_FRACTION;
    let vertices = edges.flat_map(|&(s, d)| [s, d]).distinct().with_record_bytes(msg_bytes);
    let n = vertices.count()?;
    if n == 0 {
        return Ok(Vec::new());
    }
    let nf = n as f64;
    let out_deg =
        edges.map(|(s, _)| (*s, 1u64)).with_record_bytes(msg_bytes).reduce_by_key(|a, b| a + b);
    let mut ranks = vertices.map(move |v| (*v, 1.0 / nf));
    let damping = params.damping;
    for _ in 0..params.max_iterations {
        // rank/out_deg along each edge.
        let with_deg = ranks.join(&out_deg);
        let contribs = with_deg
            .join(&edges.clone())
            .map(|(_, ((rank, deg), dst))| (*dst, rank / *deg as f64))
            .with_record_bytes(msg_bytes);
        let sums = contribs.union(&vertices.map(|v| (*v, 0.0))).reduce_by_key(|a, b| a + b);
        // Dangling mass: total rank minus mass that flowed along edges.
        let flowed = with_deg
            .filter(|(_, (_, deg))| *deg > 0)
            .map(|(_, (rank, _))| *rank)
            .fold(0.0, |a, r| a + r)?;
        let dangling = (1.0 - flowed).max(0.0);
        let base = (1.0 - damping) / nf + damping * dangling / nf;
        let new_ranks = sums.map(move |(v, s)| (*v, base + damping * s));
        let delta = new_ranks
            .join(&ranks)
            .map(|(_, (a, b))| (a - b).abs())
            .fold(0.0f64, |m, d| m.max(*d))?;
        ranks = new_ranks;
        if delta <= params.epsilon {
            break;
        }
    }
    ranks.collect()
}

/// Flat dataflow K-means from one initial configuration: per iteration, the
/// current centroids are broadcast, points are re-assigned and the new
/// centroids collected on the driver (one job per iteration).
pub fn kmeans(
    engine: &Engine,
    points: &Bag<Point>,
    init: &[Point],
    params: &KmeansParams,
) -> Result<(Vec<Point>, f64)> {
    let k = init.len();
    let dim = init.first().map(Vec::len).unwrap_or(0);
    let mut centroids: Vec<Point> = init.to_vec();
    let centroid_bytes = (k * dim * 8) as u64;
    for _ in 0..params.max_iterations {
        let bc = engine.broadcast(centroids.clone(), centroid_bytes)?;
        let sums = points
            .map(move |p| {
                let c = nearest_centroid(bc.value(), p);
                (c, (p.clone(), 1u64))
            })
            .reduce_by_key_partials(points.num_partitions(), 128.0, |(pa, ca), (pb, cb)| {
                (pa.iter().zip(pb).map(|(a, b)| a + b).collect(), ca + cb)
            })
            .collect()?; // one job per iteration
        let mut shift: f64 = 0.0;
        for (c, (sum, count)) in sums {
            if count == 0 {
                continue;
            }
            let new: Point = sum.iter().map(|s| s / count as f64).collect();
            let d: f64 =
                new.iter().zip(&centroids[c]).map(|(a, b)| (a - b) * (a - b)).sum::<f64>().sqrt();
            shift = shift.max(d);
            centroids[c] = new;
        }
        if shift <= params.epsilon {
            break;
        }
    }
    let bc = engine.broadcast(centroids.clone(), centroid_bytes)?;
    let cost = points
        .map(move |p| {
            let c = nearest_centroid(bc.value(), p);
            bc.value()[c].iter().zip(p).map(|(a, b)| (a - b) * (a - b)).sum::<f64>()
        })
        .fold(0.0, |a, x| a + x)?;
    Ok((centroids, cost))
}

/// Build the (cached, reusable) undirected adjacency for [`bfs`]: both edge
/// directions, co-partitioned so repeated BFS joins reuse its placement.
pub fn bfs_adjacency(edges: &Bag<(u64, u64)>) -> Bag<(u64, u64)> {
    let p = edges.engine().config().default_parallelism.min(edges.num_partitions() * 2);
    edges.flat_map(|&(u, v)| [(u, v), (v, u)]).partition_by_key(p)
}

/// Flat dataflow BFS from one source over a prepared adjacency
/// ([`bfs_adjacency`]): returns `(vertex, distance)` for every reachable
/// vertex. One job per BFS level (the third parallelism level of Average
/// Distances, which is all the inner-parallel workaround can parallelize
/// there).
pub fn bfs(engine: &Engine, adj: &Bag<(u64, u64)>, source: u64) -> Result<Vec<(u64, u64)>> {
    // BFS state records are small (vertex, distance) pairs regardless of
    // how heavy the edge records are.
    let msg_bytes = 16.0;
    let mut visited = engine.parallelize_with_bytes(vec![(source, 0u64)], 1, msg_bytes);
    let mut frontier = engine.parallelize_with_bytes(vec![source], 1, msg_bytes);
    let mut depth = 0u64;
    loop {
        depth += 1;
        let d = depth;
        let candidates = frontier
            .map(|v| (*v, ()))
            .join(adj)
            .map(move |(_, ((), dst))| (*dst, d))
            .with_record_bytes(msg_bytes);
        let new_visited = visited.union(&candidates).reduce_by_key(|a, b| *a.min(b));
        let new_frontier = new_visited.filter(move |(_, dist)| *dist == d).map(|(v, _)| *v);
        let grew = new_frontier.count()?; // one job per level
        visited = new_visited;
        frontier = new_frontier;
        if grew == 0 {
            break;
        }
    }
    visited.collect()
}

/// Flat dataflow connected components by min-label propagation. Returns
/// `(vertex, component_label)`; the label is the component's smallest
/// vertex id. Shared by all Average Distances strategies (it is the
/// outermost, non-nested part of the task).
pub fn connected_components(edges: &Bag<(u64, u64)>) -> Result<Vec<(u64, u64)>> {
    // Label messages are 16-byte pairs however heavy the edge records are;
    // the adjacency is co-partitioned once so each round only shuffles the
    // (small) label table.
    let msg_bytes = 16.0;
    let p = edges.engine().config().default_parallelism.min(edges.num_partitions() * 2);
    let adj = edges.flat_map(|&(u, v)| [(u, v), (v, u)]).partition_by_key(p);
    let vertices = adj.map(|(u, _)| *u).with_record_bytes(msg_bytes).distinct();
    let mut labels = vertices.map(|v| (*v, *v));
    loop {
        let msgs = labels
            .partition_by_key(p)
            .join_into(p, &adj)
            .map(|(_, (label, dst))| (*dst, *label))
            .with_record_bytes(msg_bytes);
        let new_labels = labels.union(&msgs).reduce_by_key_into(p, |a, b| *a.min(b));
        let changed = new_labels.join(&labels).filter(|(_, (a, b))| a != b).count()?; // one job per round
        labels = new_labels;
        if changed == 0 {
            break;
        }
    }
    labels.collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::seq;
    use matryoshka_engine::Engine;

    fn sorted<T: Ord>(mut v: Vec<T>) -> Vec<T> {
        v.sort();
        v
    }

    #[test]
    fn flat_pagerank_matches_sequential() {
        let e = Engine::local();
        let edges = vec![(0u64, 1u64), (1, 2), (2, 0), (2, 1), (3, 0)];
        let params = PageRankParams::default();
        let seq_r = seq::pagerank(&edges, &params).value;
        let flat_r = {
            let b = e.parallelize(edges, 3);
            let mut r = pagerank(&b, &params).unwrap();
            r.sort_by_key(|(v, _)| *v);
            r
        };
        assert_eq!(seq_r.len(), flat_r.len());
        for ((v1, p1), (v2, p2)) in seq_r.iter().zip(&flat_r) {
            assert_eq!(v1, v2);
            assert!((p1 - p2).abs() < 1e-6, "vertex {v1}: {p1} vs {p2}");
        }
    }

    #[test]
    fn flat_kmeans_matches_sequential() {
        let e = Engine::local();
        let spec = matryoshka_datagen::KmeansSpec::small();
        let pts = matryoshka_datagen::point_cloud(&spec);
        let init = matryoshka_datagen::initial_centroid_configs(&spec, 1).remove(0).1;
        let params = KmeansParams::default();
        let seq_r = seq::kmeans(&pts, &init, &params).value;
        let bag = e.parallelize(pts, 4);
        let (flat_c, flat_cost) = kmeans(&e, &bag, &init, &params).unwrap();
        assert!((seq_r.1 - flat_cost).abs() / seq_r.1.max(1e-12) < 1e-6);
        for (a, b) in seq_r.0.iter().zip(&flat_c) {
            for (x, y) in a.iter().zip(b) {
                assert!((x - y).abs() < 1e-6);
            }
        }
    }

    #[test]
    fn flat_bfs_computes_distances() {
        let e = Engine::local();
        // Path 0-1-2-3 plus chord 0-2.
        let edges = e.parallelize(vec![(0u64, 1u64), (1, 2), (2, 3), (0, 2)], 2);
        let adj = bfs_adjacency(&edges);
        let out = sorted(bfs(&e, &adj, 0).unwrap());
        assert_eq!(out, vec![(0, 0), (1, 1), (2, 1), (3, 2)]);
    }

    #[test]
    fn flat_cc_matches_sequential() {
        let e = Engine::local();
        let edges = vec![(1u64, 2u64), (2, 3), (10, 11), (20, 21), (21, 22)];
        let expect = seq::connected_components(&edges);
        let bag = e.parallelize(edges, 3);
        let got = sorted(connected_components(&bag).unwrap());
        assert_eq!(got, expect);
    }

    #[test]
    fn flat_pagerank_jobs_scale_with_iterations() {
        let e = Engine::local();
        let edges = e.parallelize(vec![(0u64, 1u64), (1, 0)], 1);
        let s0 = e.stats();
        // epsilon < 0 never converges: exactly max_iterations run.
        pagerank(
            &edges,
            &PageRankParams { max_iterations: 5, epsilon: -1.0, ..Default::default() },
        )
        .unwrap();
        let d = e.stats().since(&s0);
        // >= 2 jobs per iteration (dangling fold + delta fold) plus setup.
        assert!(d.jobs >= 10, "expected at least 10 jobs, got {}", d.jobs);
    }
}
