//! Sequential reference implementations of the inner computations.
//!
//! These serve two purposes: they are the UDF bodies of the
//! **outer-parallel** workaround (which processes each inner collection
//! sequentially on one simulated core), and they are the test oracles every
//! distributed strategy is checked against.
//!
//! Each function also reports how much work it did (in "element operations")
//! so the simulator can price the sequential execution honestly via
//! `Bag::map_with_work`.

use std::collections::{HashMap, HashSet, VecDeque};

use matryoshka_datagen::Point;

/// Result of a sequential computation plus its work accounting.
#[derive(Debug, Clone, PartialEq)]
pub struct Seq<T> {
    /// The computed value.
    pub value: T,
    /// Element operations performed (drives the simulated cost).
    pub work: u64,
}

/// Bounce rate of one group of visits: `#(visitors with exactly one visit) /
/// #(distinct visitors)` (paper Sec. 2.1).
pub fn bounce_rate(ips: &[u64]) -> Seq<f64> {
    let mut counts: HashMap<u64, u64> = HashMap::new();
    for ip in ips {
        *counts.entry(*ip).or_insert(0) += 1;
    }
    let bounces = counts.values().filter(|&&c| c == 1).count() as f64;
    let total = counts.len() as f64;
    Seq { value: if total > 0.0 { bounces / total } else { 0.0 }, work: 3 * ips.len() as u64 }
}

/// Parameters shared by every PageRank implementation.
#[derive(Debug, Clone, Copy)]
pub struct PageRankParams {
    /// Damping factor (0.85 in the classic formulation).
    pub damping: f64,
    /// Convergence threshold on the max per-vertex rank change.
    pub epsilon: f64,
    /// Iteration cap.
    pub max_iterations: usize,
}

impl Default for PageRankParams {
    fn default() -> Self {
        PageRankParams { damping: 0.85, epsilon: 1e-4, max_iterations: 25 }
    }
}

/// Sequential PageRank over one edge list. Dangling mass is redistributed
/// uniformly, matching the distributed implementations exactly.
pub fn pagerank(edges: &[(u64, u64)], params: &PageRankParams) -> Seq<Vec<(u64, f64)>> {
    let mut vertices: Vec<u64> = edges.iter().flat_map(|&(s, d)| [s, d]).collect();
    vertices.sort_unstable();
    vertices.dedup();
    let n = vertices.len();
    if n == 0 {
        return Seq { value: Vec::new(), work: 0 };
    }
    let index: HashMap<u64, usize> = vertices.iter().enumerate().map(|(i, &v)| (v, i)).collect();
    let mut out_deg = vec![0u64; n];
    for (s, _) in edges {
        out_deg[index[s]] += 1;
    }
    let mut ranks = vec![1.0 / n as f64; n];
    let mut work = 0u64;
    for _ in 0..params.max_iterations {
        let mut contrib = vec![0.0f64; n];
        for (s, d) in edges {
            let si = index[s];
            contrib[index[d]] += ranks[si] / out_deg[si] as f64;
        }
        let dangling: f64 = (0..n).filter(|&i| out_deg[i] == 0).map(|i| ranks[i]).sum();
        let base = (1.0 - params.damping) / n as f64 + params.damping * dangling / n as f64;
        let mut delta: f64 = 0.0;
        for i in 0..n {
            let new = base + params.damping * contrib[i];
            delta = delta.max((new - ranks[i]).abs());
            ranks[i] = new;
        }
        work += edges.len() as u64 + n as u64;
        if delta <= params.epsilon {
            break;
        }
    }
    Seq { value: vertices.into_iter().zip(ranks).collect(), work }
}

/// Parameters shared by every K-means implementation.
#[derive(Debug, Clone, Copy)]
pub struct KmeansParams {
    /// Convergence threshold on the max centroid shift.
    pub epsilon: f64,
    /// Iteration cap.
    pub max_iterations: usize,
}

impl Default for KmeansParams {
    fn default() -> Self {
        KmeansParams { epsilon: 1e-4, max_iterations: 20 }
    }
}

/// Index of the centroid nearest to `p` (ties break to the lower index, so
/// every implementation agrees).
pub fn nearest_centroid(centroids: &[Point], p: &Point) -> usize {
    let mut best = 0;
    let mut best_d = f64::INFINITY;
    for (i, c) in centroids.iter().enumerate() {
        let d: f64 = c.iter().zip(p).map(|(a, b)| (a - b) * (a - b)).sum();
        if d < best_d {
            best_d = d;
            best = i;
        }
    }
    best
}

/// Lloyd's algorithm from one initial configuration. Returns the final
/// centroids and the clustering cost (sum of squared distances).
pub fn kmeans(points: &[Point], init: &[Point], params: &KmeansParams) -> Seq<(Vec<Point>, f64)> {
    let k = init.len();
    let dim = init.first().map(Vec::len).unwrap_or(0);
    let mut centroids: Vec<Point> = init.to_vec();
    let mut work = 0u64;
    for _ in 0..params.max_iterations {
        let mut sums = vec![vec![0.0; dim]; k];
        let mut counts = vec![0u64; k];
        for p in points {
            let c = nearest_centroid(&centroids, p);
            for d in 0..dim {
                sums[c][d] += p[d];
            }
            counts[c] += 1;
        }
        work += points.len() as u64 * k as u64;
        let mut shift: f64 = 0.0;
        for c in 0..k {
            if counts[c] == 0 {
                continue; // empty cluster keeps its centroid
            }
            let new: Point = sums[c].iter().map(|s| s / counts[c] as f64).collect();
            let d: f64 =
                new.iter().zip(&centroids[c]).map(|(a, b)| (a - b) * (a - b)).sum::<f64>().sqrt();
            shift = shift.max(d);
            centroids[c] = new;
        }
        if shift <= params.epsilon {
            break;
        }
    }
    let cost: f64 = points
        .iter()
        .map(|p| {
            let c = nearest_centroid(&centroids, p);
            centroids[c].iter().zip(p).map(|(a, b)| (a - b) * (a - b)).sum::<f64>()
        })
        .sum();
    work += points.len() as u64 * k as u64;
    Seq { value: (centroids, cost), work }
}

/// Average shortest-path distance over all ordered vertex pairs of one
/// connected graph (BFS from every vertex), the inner computation of the
/// Average Distances task (paper Sec. 2.2).
pub fn avg_distances(edges: &[(u64, u64)]) -> Seq<f64> {
    let mut adj: HashMap<u64, Vec<u64>> = HashMap::new();
    for &(u, v) in edges {
        adj.entry(u).or_default().push(v);
        adj.entry(v).or_default().push(u);
    }
    let vertices: Vec<u64> = {
        let mut vs: Vec<u64> = adj.keys().copied().collect();
        vs.sort_unstable();
        vs
    };
    let n = vertices.len() as u64;
    if n <= 1 {
        return Seq { value: 0.0, work: 0 };
    }
    let mut total = 0u64;
    let mut work = 0u64;
    for &src in &vertices {
        let mut dist: HashMap<u64, u64> = HashMap::new();
        dist.insert(src, 0);
        let mut q = VecDeque::from([src]);
        while let Some(x) = q.pop_front() {
            let dx = dist[&x];
            for y in adj.get(&x).into_iter().flatten() {
                work += 1;
                if !dist.contains_key(y) {
                    dist.insert(*y, dx + 1);
                    q.push_back(*y);
                }
            }
        }
        total += dist.values().sum::<u64>();
    }
    Seq { value: total as f64 / (n * (n - 1)) as f64, work }
}

/// Connected components by sequential flood fill: returns `(vertex,
/// component_label)` with the label being the smallest vertex id of the
/// component (matching the distributed label-propagation result).
pub fn connected_components(edges: &[(u64, u64)]) -> Vec<(u64, u64)> {
    let mut adj: HashMap<u64, Vec<u64>> = HashMap::new();
    for &(u, v) in edges {
        adj.entry(u).or_default().push(v);
        adj.entry(v).or_default().push(u);
    }
    let mut vertices: Vec<u64> = adj.keys().copied().collect();
    vertices.sort_unstable();
    let mut label: HashMap<u64, u64> = HashMap::new();
    for &v in &vertices {
        if label.contains_key(&v) {
            continue;
        }
        // v is the smallest unvisited id, hence its component's label.
        let mut stack = vec![v];
        let mut seen: HashSet<u64> = HashSet::new();
        while let Some(x) = stack.pop() {
            if seen.insert(x) {
                label.insert(x, v);
                for y in adj.get(&x).into_iter().flatten() {
                    if !seen.contains(y) {
                        stack.push(*y);
                    }
                }
            }
        }
    }
    let mut out: Vec<(u64, u64)> = label.into_iter().collect();
    out.sort_unstable();
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bounce_rate_counts_single_visitors() {
        // 10 visits once, 11 twice, 12 once: 2 of 3 visitors bounced.
        let r = bounce_rate(&[10, 11, 12, 11]);
        assert!((r.value - 2.0 / 3.0).abs() < 1e-12);
        assert_eq!(bounce_rate(&[]).value, 0.0);
    }

    #[test]
    fn pagerank_sums_to_one_and_ranks_hub_higher() {
        // Star: everyone links to 0.
        let edges = vec![(1, 0), (2, 0), (3, 0), (0, 1)];
        let r = pagerank(&edges, &PageRankParams::default());
        let total: f64 = r.value.iter().map(|(_, p)| p).sum();
        assert!((total - 1.0).abs() < 1e-6, "ranks must sum to 1, got {total}");
        let rank = |v: u64| r.value.iter().find(|(x, _)| *x == v).unwrap().1;
        assert!(rank(0) > rank(2));
        assert!(r.work > 0);
    }

    #[test]
    fn pagerank_handles_dangling_vertices() {
        // 1 -> 0, 0 dangles: mass must not leak.
        let r = pagerank(&[(1, 0)], &PageRankParams::default());
        let total: f64 = r.value.iter().map(|(_, p)| p).sum();
        assert!((total - 1.0).abs() < 1e-6);
    }

    #[test]
    fn pagerank_empty_graph() {
        let r = pagerank(&[], &PageRankParams::default());
        assert!(r.value.is_empty());
    }

    #[test]
    fn kmeans_separates_two_obvious_blobs() {
        let mut pts: Vec<Point> = Vec::new();
        for i in 0..50 {
            pts.push(vec![0.0 + (i % 5) as f64 * 0.001, 0.0]);
            pts.push(vec![10.0 + (i % 5) as f64 * 0.001, 10.0]);
        }
        let init = vec![vec![1.0, 1.0], vec![9.0, 9.0]];
        let r = kmeans(&pts, &init, &KmeansParams::default());
        let (cs, cost) = r.value;
        assert!(cs[0][0] < 1.0 && cs[1][0] > 9.0);
        assert!(cost < 1.0);
    }

    #[test]
    fn kmeans_keeps_empty_cluster_centroid() {
        let pts = vec![vec![0.0], vec![0.1]];
        let init = vec![vec![0.05], vec![100.0]]; // second cluster never wins
        let r = kmeans(&pts, &init, &KmeansParams::default());
        assert_eq!(r.value.0[1], vec![100.0]);
    }

    #[test]
    fn nearest_centroid_breaks_ties_low() {
        let cs = vec![vec![1.0], vec![1.0]];
        assert_eq!(nearest_centroid(&cs, &vec![1.0]), 0);
    }

    #[test]
    fn avg_distances_path_graph() {
        // Path 0-1-2: distances (0,1)=1 (0,2)=2 (1,2)=1 both directions:
        // sum = 8 over 6 ordered pairs.
        let r = avg_distances(&[(0, 1), (1, 2)]);
        assert!((r.value - 8.0 / 6.0).abs() < 1e-12);
    }

    #[test]
    fn avg_distances_trivial_graphs() {
        assert_eq!(avg_distances(&[]).value, 0.0);
        assert_eq!(avg_distances(&[(5, 5)]).value, 0.0);
    }

    #[test]
    fn connected_components_labels_by_min_vertex() {
        let edges = vec![(1, 2), (2, 3), (10, 11)];
        let cc = connected_components(&edges);
        assert_eq!(cc, vec![(1, 1), (2, 1), (3, 1), (10, 10), (11, 10)]);
    }
}
