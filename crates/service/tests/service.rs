//! Integration tests for the multi-tenant job service: determinism,
//! golden-pin parity, fairness, cancellation/deadline paths, and
//! admission control.

use matryoshka_core::scheduler::{PoolConfig, SchedulerConfig, SchedulingPolicy};
use matryoshka_core::MatryoshkaConfig;
use matryoshka_engine::sim::SimTime;
use matryoshka_engine::{ClusterConfig, Engine};
use matryoshka_service::{JobOutcome, JobService, JobSpec, JobStatus};

/// SplitMix64, for seeded job-cost variation in the property tests.
fn mix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// A native job with a simulated cost that scales with `n`.
fn costed(n: u64) -> JobSpec {
    JobSpec::native(format!("cost-{n}"), move |e: &Engine| {
        let records = e.generate(n, 8, |i| (i % 97, i)).count()?;
        Ok(format!("{records} records"))
    })
}

/// The golden_sim k-means step, verbatim (the direct-engine pin is
/// `sim_nanos == 313_271_737`).
fn kmeans_step(e: &Engine) {
    let points = e.generate(2_000, 8, |i| ((i % 100) as f64, ((i * 7) % 100) as f64));
    let centroids = [(10.0f64, 10.0f64), (50.0, 50.0), (90.0, 10.0), (25.0, 75.0)];
    let assigned = points.map(move |&(x, y)| {
        let mut best = 0u32;
        let mut best_d = f64::INFINITY;
        for (ci, &(cx, cy)) in centroids.iter().enumerate() {
            let d = (x - cx) * (x - cx) + (y - cy) * (y - cy);
            if d < best_d {
                best_d = d;
                best = ci as u32;
            }
        }
        (best, (x, y, 1u64))
    });
    let sums = assigned.reduce_by_key(|a, b| (a.0 + b.0, a.1 + b.1, a.2 + b.2));
    let out = sums.collect().unwrap();
    assert_eq!(out.len(), 4, "every centroid attracts some points");
}

fn fair_service(total_slots: usize, queue_capacity: usize, seed: u64) -> JobService {
    let config = MatryoshkaConfig {
        scheduler: SchedulerConfig {
            policy: SchedulingPolicy::FairShare,
            pools: vec![PoolConfig::new("batch", 1), PoolConfig::new("interactive", 3)],
            queue_capacity,
            total_slots,
            default_slots: 1,
        },
        ..MatryoshkaConfig::default()
    };
    JobService::new(ClusterConfig::local_test(), config, seed).unwrap()
}

// ---------------------------------------------------------------------------
// Determinism
// ---------------------------------------------------------------------------

/// One full service run with concurrent jobs across two pools; returns
/// everything observable.
fn deterministic_run() -> (Vec<String>, Vec<String>, String) {
    let svc = fair_service(2, 64, 42);
    let ids: Vec<_> = [
        JobSpec::program("visit_counts", PROGRAM_VISIT_COUNTS).in_pool("batch"),
        JobSpec::program("union_distinct", PROGRAM_UNION_DISTINCT).in_pool("interactive"),
        costed(4_000).in_pool("interactive"),
        costed(1_000).in_pool("batch"),
    ]
    .into_iter()
    .map(|spec| svc.submit(spec).unwrap())
    .collect();
    svc.run_until_idle();
    let reports =
        ids.iter().map(|id| format!("{:?}", svc.report(*id).expect("job finished"))).collect();
    let events = svc.events().iter().map(|e| format!("{e:?}")).collect();
    (reports, events, format!("{:?}", svc.stats()))
}

const PROGRAM_VISIT_COUNTS: &str = "map(groupByKey(source(visits)), g => (g.0, count(g.1)))";
const PROGRAM_UNION_DISTINCT: &str = "count(distinct(union(source(xs), source(ys))))";

#[test]
fn concurrent_jobs_are_bit_identical_across_runs() {
    let a = deterministic_run();
    let b = deterministic_run();
    assert_eq!(a.0, b.0, "per-job reports (sim_nanos, stats, times) must match exactly");
    assert_eq!(a.1, b.1, "service event logs must match exactly");
    assert_eq!(a.2, b.2, "service counters must match exactly");
}

#[test]
fn service_job_matches_direct_engine_golden_pin() {
    // Direct engine run (what golden_sim pins).
    let direct = Engine::new(ClusterConfig::local_test());
    kmeans_step(&direct);
    assert_eq!(direct.sim_time().as_nanos(), 313_271_737, "golden_sim kmeans pin");

    // Same program through the service, sharing slots with another job.
    let svc = JobService::local_test(7);
    let noise = svc.submit(costed(2_000)).unwrap();
    let id = svc
        .submit(JobSpec::native("kmeans", |e: &Engine| {
            kmeans_step(e);
            Ok("ok".to_string())
        }))
        .unwrap();
    svc.run_until_idle();
    assert!(matches!(svc.status(noise), Some(JobStatus::Done(_))));
    let report = svc.report(id).unwrap();
    let JobOutcome::Completed { sim_nanos, .. } = report.outcome else {
        panic!("kmeans job should complete: {:?}", report.outcome);
    };
    assert_eq!(sim_nanos, 313_271_737, "service must not perturb per-job simulated cost");
    assert_eq!(report.stats, direct.stats(), "per-job stats equal the direct-engine stats");
}

// ---------------------------------------------------------------------------
// Virtual core-slot accounting
// ---------------------------------------------------------------------------

#[test]
fn slots_are_never_oversubscribed_in_virtual_time() {
    let svc = fair_service(4, 64, 1);
    let ids: Vec<_> = (0..6)
        .map(|i| svc.submit(costed(1_000 + 100 * i).in_pool("batch").with_slots(2)).unwrap())
        .collect();
    svc.run_until_idle();
    let reports: Vec<_> = ids.iter().map(|id| svc.report(*id).unwrap()).collect();
    // At every job start, the sum of slots of overlapping jobs stays within
    // the budget.
    for r in &reports {
        let t = r.started.unwrap().as_nanos();
        let in_flight: usize = reports
            .iter()
            .filter(|o| o.started.is_some_and(|s| s.as_nanos() <= t) && o.finished.as_nanos() > t)
            .map(|o| o.slots)
            .sum();
        assert!(in_flight <= 4, "virtual slot oversubscription: {in_flight} > 4 at t={t}");
    }
    // And with 2-slot jobs under a 4-slot budget, two really do overlap.
    let first_start = reports.iter().map(|r| r.started.unwrap()).min().unwrap();
    let started_at_zero = reports.iter().filter(|r| r.started.unwrap() == first_start).count();
    assert_eq!(started_at_zero, 2, "two 2-slot jobs share the 4-slot budget");
}

// ---------------------------------------------------------------------------
// Fairness
// ---------------------------------------------------------------------------

#[test]
fn fair_share_favors_the_higher_weight_pool() {
    let svc = fair_service(1, 256, 3);
    let mut batch = Vec::new();
    let mut interactive = Vec::new();
    for _ in 0..12 {
        batch.push(svc.submit(costed(2_000).in_pool("batch")).unwrap());
        interactive.push(svc.submit(costed(2_000).in_pool("interactive")).unwrap());
    }
    svc.run_until_idle();
    let mean_wait = |ids: &[u64]| -> f64 {
        let total: u64 = ids.iter().map(|id| svc.report(*id).unwrap().queue_wait.as_nanos()).sum();
        total as f64 / ids.len() as f64
    };
    let (b, i) = (mean_wait(&batch), mean_wait(&interactive));
    assert!(
        i < b,
        "weight-3 pool should wait less than weight-1 pool (interactive {i} vs batch {b})"
    );
}

/// Property: under fair share, every start picks a pool whose
/// weight-normalized consumption is minimal among pools that had queued
/// work — across seeds and varying job costs.
#[test]
fn fair_share_start_order_is_weight_normalized_greedy() {
    for seed in [1u64, 2, 3] {
        let svc = fair_service(1, 256, seed);
        let weights = [1u128, 3u128];
        let mut ids = Vec::new();
        for i in 0..20u64 {
            let pool = if i % 2 == 0 { "batch" } else { "interactive" };
            let n = 500 + mix(seed ^ i) % 3_000;
            ids.push((svc.submit(costed(n).in_pool(pool)).unwrap(), (i % 2) as usize));
        }
        svc.run_until_idle();
        let reports: Vec<_> =
            ids.iter().map(|(id, pool)| (svc.report(*id).unwrap(), *pool)).collect();
        let mut starts: Vec<(u64, usize)> =
            reports.iter().map(|(r, pool)| (r.started.unwrap().as_nanos(), *pool)).collect();
        starts.sort();
        for &(t, picked) in &starts {
            // Consumption charged on finish: sum slots*sim_nanos of jobs done
            // by t.
            let consumed = |pool: usize| -> u128 {
                reports
                    .iter()
                    .filter(|(r, p)| *p == pool && r.finished.as_nanos() <= t)
                    .map(|(r, _)| {
                        r.slots as u128 * (r.finished - r.started.unwrap()).as_nanos() as u128
                    })
                    .sum()
            };
            let other = 1 - picked;
            // Did the other pool have a queued candidate at t?
            let other_waiting =
                reports.iter().any(|(r, p)| *p == other && r.started.unwrap().as_nanos() > t);
            if other_waiting {
                assert!(
                    consumed(picked) * weights[other] <= consumed(other) * weights[picked],
                    "seed {seed}: start at t={t} picked pool {picked} although pool \
                     {other} was more underserved"
                );
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Cancellation and deadlines
// ---------------------------------------------------------------------------

#[test]
fn queued_jobs_cancel_immediately() {
    let svc = JobService::local_test(5);
    let id = svc.submit(costed(1_000)).unwrap();
    assert_eq!(svc.status(id), Some(JobStatus::Queued));
    assert!(svc.cancel(id));
    let report = svc.report(id).unwrap();
    assert_eq!(report.started, None, "never started");
    assert!(matches!(report.outcome, JobOutcome::Cancelled { ref reason }
        if reason == "cancelled by client"));
    assert!(!svc.cancel(id), "already done");
    svc.run_until_idle();
    assert_eq!(svc.stats().jobs_cancelled, 1);
    assert_eq!(svc.stats().jobs_completed, 0);
}

#[test]
fn queued_deadline_expires_before_start() {
    // One slot; a long job ahead of a short-deadline job.
    let config = MatryoshkaConfig {
        scheduler: SchedulerConfig { total_slots: 1, ..SchedulerConfig::default() },
        ..MatryoshkaConfig::default()
    };
    let svc = JobService::new(ClusterConfig::local_test(), config, 5).unwrap();
    let long = svc.submit(costed(50_000)).unwrap();
    let d = SimTime::from_nanos(10);
    let doomed = svc.submit(costed(1_000).with_deadline(d)).unwrap();
    svc.run_until_idle();
    assert!(matches!(svc.status(long), Some(JobStatus::Done(JobOutcome::Completed { .. }))));
    let report = svc.report(doomed).unwrap();
    assert_eq!(report.started, None);
    assert_eq!(report.finished, d, "cancelled exactly at its virtual deadline");
    assert!(matches!(report.outcome, JobOutcome::Cancelled { ref reason }
        if reason.contains("deadline exceeded while queued")));
}

#[test]
fn running_jobs_abort_on_their_simulated_deadline() {
    let svc = JobService::local_test(5);
    let id = svc.submit(costed(100_000).with_deadline(SimTime::from_nanos(1_000))).unwrap();
    svc.run_until_idle();
    let report = svc.report(id).unwrap();
    assert!(report.started.is_some(), "the job did start");
    assert!(
        matches!(report.outcome, JobOutcome::Cancelled { ref reason }
        if reason.contains("deadline exceeded while running")),
        "{:?}",
        report.outcome
    );
    assert_eq!(svc.stats().jobs_cancelled, 1);
}

#[test]
fn running_jobs_cancel_cooperatively() {
    let svc = JobService::local_test(5);
    // The job cancels its own engine mid-flight — same code path a
    // concurrent `service.cancel()` takes through the engines map.
    let id = svc
        .submit(JobSpec::native("self-cancel", |e: &Engine| {
            e.generate(1_000, 8, |i| i).count()?;
            e.request_cancel();
            e.generate(1_000, 8, |i| i).count()?;
            Ok("unreachable".to_string())
        }))
        .unwrap();
    svc.run_until_idle();
    assert!(matches!(svc.status(id), Some(JobStatus::Done(JobOutcome::Cancelled { .. }))));
}

// ---------------------------------------------------------------------------
// Admission control
// ---------------------------------------------------------------------------

#[test]
fn full_queue_rejects_with_reason() {
    let config = MatryoshkaConfig {
        scheduler: SchedulerConfig { queue_capacity: 1, ..SchedulerConfig::default() },
        ..MatryoshkaConfig::default()
    };
    let svc = JobService::new(ClusterConfig::local_test(), config, 5).unwrap();
    svc.submit(costed(1_000)).unwrap();
    let rej = svc.submit(costed(1_000)).unwrap_err();
    assert!(rej.reason.contains("queue full"), "{}", rej.reason);
    assert_eq!(svc.status(rej.id), None, "rejected jobs leave no record");
    svc.run_until_idle();
    assert_eq!(svc.stats().jobs_rejected, 1);
    assert_eq!(svc.stats().jobs_completed, 1);
}

#[test]
fn unknown_pool_rejects() {
    let svc = JobService::local_test(5);
    let rej = svc.submit(costed(1_000).in_pool("nope")).unwrap_err();
    assert!(rej.reason.contains("unknown pool"), "{}", rej.reason);
}

#[test]
fn analyzer_errors_reject_before_admission() {
    let svc = JobService::local_test(5);
    // `y` is unbound: MAT001 from the analyzer, surfaced at submit time.
    let rej = svc.submit(JobSpec::program("bad", "map(source(xs), v => y)")).unwrap_err();
    assert!(
        rej.diagnostics.iter().any(|d| d.contains("MAT001")),
        "diagnostics should carry the MAT code: {:?}",
        rej.diagnostics
    );
    assert_eq!(svc.stats().jobs_rejected, 1);
    assert!(svc.is_idle(), "nothing was admitted");
}

// ---------------------------------------------------------------------------
// Observability
// ---------------------------------------------------------------------------

#[test]
fn chrome_export_gives_each_job_its_own_lane() {
    let mut cluster = ClusterConfig::local_test();
    cluster.trace_events = true;
    let svc = JobService::new(cluster, MatryoshkaConfig::default(), 5).unwrap();
    let a = svc.submit(costed(1_000)).unwrap();
    let b = svc.submit(costed(2_000)).unwrap();
    svc.run_until_idle();
    let trace = svc.export_chrome_trace();
    assert!(trace.contains("\"job service\""), "service lane metadata");
    assert!(trace.contains(&format!("\"pid\":{}", 2 + a)), "lane for job {a}");
    assert!(trace.contains(&format!("\"pid\":{}", 2 + b)), "lane for job {b}");
    assert!(
        trace.contains(&format!("job {a} [default]"))
            && trace.contains(&format!("job {b} [default]")),
        "started/finished pairs become service-lane slices"
    );
    let json = svc.export_json();
    assert!(json.contains("\"jobs_completed\":2"), "summary counters in JSON export");
}
