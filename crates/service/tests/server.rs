//! End-to-end test of the TCP submission server: a real socket, the wire
//! protocol, and graceful shutdown.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::thread;

use matryoshka_core::MatryoshkaConfig;
use matryoshka_engine::ClusterConfig;
use matryoshka_service::{JobService, Server};

struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Client {
    fn connect(addr: std::net::SocketAddr) -> Client {
        let writer = TcpStream::connect(addr).unwrap();
        let reader = BufReader::new(writer.try_clone().unwrap());
        Client { reader, writer }
    }

    fn send(&mut self, line: &str) {
        writeln!(self.writer, "{line}").unwrap();
    }

    fn recv(&mut self) -> String {
        let mut line = String::new();
        self.reader.read_line(&mut line).unwrap();
        line.trim_end().to_string()
    }

    fn submit(&mut self, name: &str, pool: &str, program: &str) -> String {
        write!(self.writer, "SUBMIT {name} {pool} {}\n{program}", program.len()).unwrap();
        self.writer.flush().unwrap();
        self.recv()
    }
}

#[test]
fn server_round_trip_over_tcp() {
    let service =
        JobService::new(ClusterConfig::local_test(), MatryoshkaConfig::default(), 11).unwrap();
    let server = Server::bind(service, "127.0.0.1:0").unwrap();
    let addr = server.local_addr().unwrap();
    let handle = thread::spawn(move || server.run().unwrap());

    let mut c = Client::connect(addr);
    c.send("PING");
    assert_eq!(c.recv(), "OK pong");

    // A good program: admitted, runs, completes.
    let reply = c.submit(
        "visit_counts",
        "default",
        "map(groupByKey(source(visits)), g => (g.0, count(g.1)))",
    );
    assert_eq!(reply, "OK 0 queued", "first submission gets id 0");
    c.send("WAIT 0");
    let done = c.recv();
    assert!(done.starts_with("OK 0 completed "), "{done}");
    c.send("STATUS 0");
    assert_eq!(c.recv(), "OK 0 completed");

    // A bad program: analyzer diagnostics stream back before the ERR line.
    let reply = c.submit("bad", "default", "map(source(xs), v => y)");
    assert!(reply.starts_with("DIAG "), "{reply}");
    let mut last = reply;
    while last.starts_with("DIAG ") {
        last = c.recv();
    }
    assert!(last.starts_with("ERR rejected: "), "{last}");

    // Unknown pool is an admission error too.
    let reply = c.submit("lost", "nope", "count(source(xs))");
    assert!(last.starts_with("ERR "), "{reply}");

    // Protocol-level errors don't kill the connection.
    c.send("FROBNICATE");
    assert!(c.recv().starts_with("ERR unknown command"));
    c.send("WAIT 999");
    assert_eq!(c.recv(), "ERR unknown job 999");

    c.send("STATS");
    let stats = c.recv();
    assert!(stats.contains("jobs_completed=1"), "{stats}");
    assert!(stats.contains("jobs_rejected=2"), "{stats}");

    // A second connection sees the same service.
    let mut c2 = Client::connect(addr);
    c2.send("STATUS 0");
    assert_eq!(c2.recv(), "OK 0 completed");

    c.send("SHUTDOWN");
    assert_eq!(c.recv(), "OK shutting down");
    handle.join().expect("server thread");
}
