//! The std-only TCP server behind `matryoshka-serve`.
//!
//! One thread per connection speaks the [`wire`](crate::wire) protocol; a
//! dedicated driver thread runs the service's virtual-time event loop so
//! submissions from any connection are scheduled by the single
//! deterministic driver. `SHUTDOWN` stops accepting, drains running work,
//! and returns from [`Server::run`].

use std::io::{self, BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::Duration;

use matryoshka_engine::sim::SimTime;

use crate::job::{JobOutcome, JobSpec, JobStatus};
use crate::service::JobService;
use crate::wire::{parse_command, Command};

/// A bound, not-yet-running submission server.
pub struct Server {
    service: JobService,
    listener: TcpListener,
}

/// Replace newlines so multi-line payloads fit the one-line reply grammar.
fn one_line(s: &str) -> String {
    s.replace(['\n', '\r'], "; ")
}

impl Server {
    /// Bind to `addr` (use port 0 for an ephemeral port; the bound address
    /// is available via [`Server::local_addr`]).
    pub fn bind(service: JobService, addr: &str) -> io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        Ok(Server { service, listener })
    }

    /// The actually-bound socket address.
    pub fn local_addr(&self) -> io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// The served job service (for in-process tests).
    pub fn service(&self) -> &JobService {
        &self.service
    }

    /// Accept and serve connections until a client sends `SHUTDOWN`.
    /// Returns once queued and running jobs have drained.
    pub fn run(self) -> io::Result<()> {
        let shutdown = Arc::new(AtomicBool::new(false));
        let driver = {
            let service = self.service.clone();
            let shutdown = Arc::clone(&shutdown);
            thread::spawn(move || loop {
                service.wait_for_work(Duration::from_millis(25));
                service.run_until_idle();
                if shutdown.load(Ordering::SeqCst) && service.is_idle() {
                    return;
                }
            })
        };
        self.listener.set_nonblocking(true)?;
        loop {
            match self.listener.accept() {
                Ok((stream, _peer)) => {
                    stream.set_nonblocking(false)?;
                    let service = self.service.clone();
                    let shutdown = Arc::clone(&shutdown);
                    thread::spawn(move || {
                        // A broken connection only ends that connection.
                        let _ = handle_connection(stream, &service, &shutdown);
                    });
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                    if shutdown.load(Ordering::SeqCst) {
                        break;
                    }
                    thread::sleep(Duration::from_millis(5));
                }
                Err(e) => return Err(e),
            }
        }
        driver.join().expect("driver thread panicked");
        Ok(())
    }
}

/// Serve one client until it disconnects or sends `SHUTDOWN`.
fn handle_connection(
    stream: TcpStream,
    service: &JobService,
    shutdown: &AtomicBool,
) -> io::Result<()> {
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut out = stream;
    let mut line = String::new();
    loop {
        line.clear();
        if reader.read_line(&mut line)? == 0 {
            return Ok(()); // client closed
        }
        let trimmed = line.trim();
        if trimmed.is_empty() {
            continue;
        }
        let cmd = match parse_command(trimmed) {
            Ok(cmd) => cmd,
            Err(e) => {
                writeln!(out, "ERR {e}")?;
                continue;
            }
        };
        match cmd {
            Command::Submit { name, pool, len, slots, deadline_ms } => {
                let mut body = vec![0u8; len];
                reader.read_exact(&mut body)?;
                let Ok(source) = String::from_utf8(body) else {
                    writeln!(out, "ERR program body is not valid UTF-8")?;
                    continue;
                };
                let mut spec = JobSpec::program(name, source).in_pool(pool).with_slots(slots);
                if let Some(ms) = deadline_ms {
                    spec = spec.with_deadline(SimTime::from_millis(ms));
                }
                match service.submit(spec) {
                    Ok(id) => writeln!(out, "OK {id} queued")?,
                    Err(rej) => {
                        for d in &rej.diagnostics {
                            writeln!(out, "DIAG {}", one_line(d))?;
                        }
                        writeln!(out, "ERR rejected: {}", one_line(&rej.reason))?;
                    }
                }
            }
            Command::Wait(id) => match service.wait(id) {
                None => writeln!(out, "ERR unknown job {id}")?,
                Some(JobOutcome::Completed { result, sim_nanos }) => {
                    writeln!(out, "OK {id} completed {sim_nanos} {}", one_line(&result))?;
                }
                Some(JobOutcome::Failed { error, sim_nanos }) => {
                    writeln!(out, "OK {id} failed {sim_nanos} {}", one_line(&error))?;
                }
                Some(JobOutcome::Cancelled { reason }) => {
                    writeln!(out, "OK {id} cancelled {}", one_line(&reason))?;
                }
            },
            Command::Status(id) => match service.status(id) {
                None => writeln!(out, "ERR unknown job {id}")?,
                Some(JobStatus::Queued) => writeln!(out, "OK {id} queued")?,
                Some(JobStatus::Running) => writeln!(out, "OK {id} running")?,
                Some(JobStatus::Done(JobOutcome::Completed { .. })) => {
                    writeln!(out, "OK {id} completed")?;
                }
                Some(JobStatus::Done(JobOutcome::Failed { .. })) => {
                    writeln!(out, "OK {id} failed")?;
                }
                Some(JobStatus::Done(JobOutcome::Cancelled { .. })) => {
                    writeln!(out, "OK {id} cancelled")?;
                }
            },
            Command::Cancel(id) => {
                if service.cancel(id) {
                    writeln!(out, "OK {id} cancel requested")?;
                } else {
                    writeln!(out, "ERR cannot cancel job {id}")?;
                }
            }
            Command::Stats => {
                let s = service.stats();
                writeln!(
                    out,
                    "OK jobs_completed={} jobs_cancelled={} jobs_rejected={} \
                     queue_wait_nanos={} vt_nanos={}",
                    s.jobs_completed,
                    s.jobs_cancelled,
                    s.jobs_rejected,
                    s.queue_wait_nanos,
                    service.virtual_time().as_nanos()
                )?;
            }
            Command::Ping => writeln!(out, "OK pong")?,
            Command::Shutdown => {
                shutdown.store(true, Ordering::SeqCst);
                writeln!(out, "OK shutting down")?;
                return Ok(());
            }
        }
        out.flush()?;
    }
}
