//! The job service: admission control, the deterministic virtual-time
//! event loop, and per-job isolation.
//!
//! ## Execution model
//!
//! Every admitted job runs on **its own engine** (own simulated clock, own
//! statistics, own trace collector), so a job's `sim_nanos` and
//! [`StatsSnapshot`] are exactly what a directly-driven engine would report
//! — scheduling can never leak into them. Concurrency between jobs is
//! *virtual*: the scheduler multiplexes `total_slots` simulated cores in
//! discrete-event fashion, so two jobs overlap in virtual time while their
//! host execution happens one at a time on the driver thread (host
//! parallelism inside a job still uses the process-wide shared worker
//! pool). Queue waits, start times, and completion times are therefore a
//! pure function of (scheduler config, seed, submission order + arrival
//! times) — bit-identical across runs.

use std::collections::{HashMap, HashSet, VecDeque};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

use matryoshka_core::MatryoshkaConfig;
use matryoshka_engine::sim::{SimTime, Stats};
use matryoshka_engine::trace::{export_chrome_trace_multi, export_json, ChromeLane};
use matryoshka_engine::{
    Bag, ClusterConfig, Decision, Engine, EngineError, EngineEvent, StatsSnapshot,
};
use matryoshka_ir::{prepare_program, PreparedProgram, RtVal, Value};

use crate::datasets::source_bag;
use crate::job::{
    JobId, JobOutcome, JobPayload, JobReport, JobSpec, JobStatus, NativeJob, Rejection,
};
use crate::sched::{Candidate, Scheduler};

/// An admitted payload (programs are already prepared — parse and analysis
/// happened at admission).
enum Admitted {
    Program(PreparedProgram),
    Native(NativeJob),
}

/// A job waiting for core slots.
struct QueuedJob {
    id: JobId,
    pool: usize,
    slots: usize,
    arrival: SimTime,
    /// Absolute virtual deadline (`arrival + spec.deadline`).
    deadline_vt: Option<SimTime>,
    payload: Admitted,
}

/// A job holding core slots until its virtual end time.
struct RunningJob {
    id: JobId,
    pool: usize,
    slots: usize,
    end_vt: SimTime,
    /// Engine-local simulated nanoseconds the job consumed.
    duration: SimTime,
    outcome: JobOutcome,
    stats: StatsSnapshot,
    events: Vec<EngineEvent>,
    decisions: Vec<Decision>,
}

/// Everything the service remembers about a job (per-job isolation: events,
/// decisions, and stats come from the job's own engine).
struct JobEntry {
    name: String,
    pool_name: String,
    slots: usize,
    arrival: SimTime,
    start_vt: Option<SimTime>,
    status: JobStatus,
    report: Option<JobReport>,
    events: Vec<EngineEvent>,
    decisions: Vec<Decision>,
}

struct State {
    vt: SimTime,
    next_id: JobId,
    queued: VecDeque<QueuedJob>,
    running: Vec<RunningJob>,
    free_slots: usize,
    sched: Scheduler,
    jobs: HashMap<JobId, JobEntry>,
    /// Service-lane lifecycle events (`JobQueued`/`JobStarted`/...).
    events: Vec<EngineEvent>,
    /// Client cancel requests not yet applied.
    cancels: HashSet<JobId>,
    /// Engines of jobs whose host execution is in flight (for cooperative
    /// cancellation from other threads).
    engines: HashMap<JobId, Engine>,
}

struct Inner {
    cluster: ClusterConfig,
    config: MatryoshkaConfig,
    seed: u64,
    state: Mutex<State>,
    /// Signalled on submissions and completions.
    cv: Condvar,
    /// Serializes event-loop drivers (determinism needs exactly one).
    driver: Mutex<()>,
    /// Service-level counters (`jobs_completed`, `jobs_cancelled`,
    /// `jobs_rejected`, `queue_wait_nanos`; the engine-side counters of
    /// this instance stay 0).
    stats: Stats,
}

/// Handle to a multi-tenant job service. Cheap to clone; all clones share
/// the same state.
#[derive(Clone)]
pub struct JobService {
    inner: Arc<Inner>,
}

/// What the event loop decided to do next (computed under the state lock,
/// executed outside it).
struct StartCtx {
    id: JobId,
    pool: usize,
    slots: usize,
    start_vt: SimTime,
    payload: Admitted,
    engine: Engine,
}

impl JobService {
    /// Create a service. `cluster` configures each job's engine (enable
    /// `trace_events` there to capture per-job traces), `config.scheduler`
    /// the pools and admission bounds, and `seed` the generated datasets.
    pub fn new(
        cluster: ClusterConfig,
        config: MatryoshkaConfig,
        seed: u64,
    ) -> Result<JobService, String> {
        config.scheduler.validate()?;
        let free_slots = config.scheduler.total_slots;
        let sched = Scheduler::new(&config.scheduler);
        Ok(JobService {
            inner: Arc::new(Inner {
                cluster,
                config,
                seed,
                state: Mutex::new(State {
                    vt: SimTime::ZERO,
                    next_id: 0,
                    queued: VecDeque::new(),
                    running: Vec::new(),
                    free_slots,
                    sched,
                    jobs: HashMap::new(),
                    events: Vec::new(),
                    cancels: HashSet::new(),
                    engines: HashMap::new(),
                }),
                cv: Condvar::new(),
                driver: Mutex::new(()),
                stats: Stats::default(),
            }),
        })
    }

    /// A service over [`ClusterConfig::local_test`] with the default
    /// scheduler — the common test setup.
    pub fn local_test(seed: u64) -> JobService {
        JobService::new(ClusterConfig::local_test(), MatryoshkaConfig::default(), seed)
            .expect("default scheduler config is valid")
    }

    /// Submit a job arriving *now* (at the current virtual time).
    pub fn submit(&self, spec: JobSpec) -> Result<JobId, Rejection> {
        let now = self.inner.state.lock().expect("service state poisoned").vt;
        self.submit_at(spec, now)
    }

    /// Submit a job with an explicit virtual arrival time (clamped to the
    /// current virtual clock; the scheduler will not start it earlier).
    /// This is how benches model offered load deterministically.
    pub fn submit_at(&self, spec: JobSpec, arrival: SimTime) -> Result<JobId, Rejection> {
        let scheduler = &self.inner.config.scheduler;
        let mut st = self.inner.state.lock().expect("service state poisoned");
        let id = st.next_id;
        st.next_id += 1;
        let arrival = if arrival.as_nanos() > st.vt.as_nanos() { arrival } else { st.vt };

        let reject = |st: &mut State, reason: String, diagnostics: Vec<String>| {
            st.events.push(EngineEvent::JobRejected {
                job: id,
                reason: reason.clone(),
                at: arrival,
            });
            self.inner.stats.add_job_rejected();
            Err(Rejection { id, reason, diagnostics })
        };

        let Some(pool) = scheduler.pool_index(&spec.pool) else {
            return reject(&mut st, format!("unknown pool `{}`", spec.pool), Vec::new());
        };
        if st.queued.len() >= scheduler.queue_capacity {
            return reject(
                &mut st,
                format!("queue full (capacity {})", scheduler.queue_capacity),
                Vec::new(),
            );
        }
        let payload = match spec.payload {
            JobPayload::Native(f) => Admitted::Native(f),
            JobPayload::Program { source, dialect } => match prepare_program(&source, dialect) {
                Ok(p) => Admitted::Program(p),
                Err(e) => {
                    let diags = e
                        .diagnostics()
                        .map(|d| d.iter().map(|x| x.to_string()).collect())
                        .unwrap_or_default();
                    return reject(&mut st, e.to_string(), diags);
                }
            },
        };

        let slots = if spec.slots == 0 { scheduler.default_slots } else { spec.slots }
            .clamp(1, scheduler.total_slots);
        let deadline_vt = spec.deadline.map(|d| arrival + d);
        st.events.push(EngineEvent::JobQueued {
            job: id,
            name: spec.name.clone(),
            pool: spec.pool.clone(),
            at: arrival,
        });
        st.jobs.insert(
            id,
            JobEntry {
                name: spec.name,
                pool_name: spec.pool,
                slots,
                arrival,
                start_vt: None,
                status: JobStatus::Queued,
                report: None,
                events: Vec::new(),
                decisions: Vec::new(),
            },
        );
        st.queued.push_back(QueuedJob { id, pool, slots, arrival, deadline_vt, payload });
        self.inner.cv.notify_all();
        Ok(id)
    }

    /// Request cancellation. Queued jobs are cancelled immediately; a job
    /// whose host execution is in flight is cancelled cooperatively (its
    /// engine aborts at the next charge point). Returns `false` if the job
    /// is unknown or already done.
    pub fn cancel(&self, id: JobId) -> bool {
        let mut st = self.inner.state.lock().expect("service state poisoned");
        match st.jobs.get(&id).map(|e| e.status.clone()) {
            None | Some(JobStatus::Done(_)) => false,
            Some(JobStatus::Queued) => {
                let vt = st.vt;
                self.cancel_queued(&mut st, id, vt, "cancelled by client");
                true
            }
            Some(JobStatus::Running) => {
                if let Some(engine) = st.engines.get(&id) {
                    engine.request_cancel();
                } else {
                    // Host execution already finished; the job merely waits
                    // for its virtual end time. Too late to cancel.
                    return false;
                }
                st.cancels.insert(id);
                true
            }
        }
    }

    /// Current lifecycle state of a job (`None` for unknown/rejected ids).
    pub fn status(&self, id: JobId) -> Option<JobStatus> {
        let st = self.inner.state.lock().expect("service state poisoned");
        st.jobs.get(&id).map(|e| e.status.clone())
    }

    /// Final report of a finished job.
    pub fn report(&self, id: JobId) -> Option<JobReport> {
        let st = self.inner.state.lock().expect("service state poisoned");
        st.jobs.get(&id).and_then(|e| e.report.clone())
    }

    /// Block until `id` finishes (requires a driver: either another thread
    /// inside [`JobService::run_until_idle`], or call it afterwards).
    /// Returns `None` for unknown ids.
    pub fn wait(&self, id: JobId) -> Option<JobOutcome> {
        let mut st = self.inner.state.lock().expect("service state poisoned");
        loop {
            match st.jobs.get(&id).map(|e| e.status.clone()) {
                None => return None,
                Some(JobStatus::Done(outcome)) => return Some(outcome),
                Some(_) => st = self.inner.cv.wait(st).expect("service state poisoned"),
            }
        }
    }

    /// Is there neither queued nor (virtually) running work?
    pub fn is_idle(&self) -> bool {
        let st = self.inner.state.lock().expect("service state poisoned");
        st.queued.is_empty() && st.running.is_empty()
    }

    /// Block up to `timeout` for new queued work (server driver helper).
    pub fn wait_for_work(&self, timeout: Duration) -> bool {
        let st = self.inner.state.lock().expect("service state poisoned");
        if !st.queued.is_empty() {
            return true;
        }
        let (st, _) = self.inner.cv.wait_timeout(st, timeout).expect("service state poisoned");
        !st.queued.is_empty()
    }

    /// Service-level counters: `jobs_completed`, `jobs_cancelled`,
    /// `jobs_rejected`, and virtual `queue_wait_nanos`. Engine-side
    /// counters of this snapshot are always 0 — they live in each job's
    /// own [`JobReport::stats`].
    pub fn stats(&self) -> StatsSnapshot {
        self.inner.stats.snapshot()
    }

    /// The service-lane lifecycle events, in record order.
    pub fn events(&self) -> Vec<EngineEvent> {
        let st = self.inner.state.lock().expect("service state poisoned");
        st.events.clone()
    }

    /// Current virtual time (advances only while a driver runs the loop).
    pub fn virtual_time(&self) -> SimTime {
        self.inner.state.lock().expect("service state poisoned").vt
    }

    /// Serialize the service lifecycle events as a JSON document (the
    /// engine's exporter; per-job engine traces are in each job's lane of
    /// [`JobService::export_chrome_trace`]).
    pub fn export_json(&self) -> String {
        let st = self.inner.state.lock().expect("service state poisoned");
        export_json(&st.events, &[])
    }

    /// Chrome-trace export with one Perfetto `pid` lane per job.
    ///
    /// Lane `pid 1` is the service (lifecycle events); each job gets
    /// `pid 2 + id` carrying its own engine's events and decisions shifted
    /// onto the service timeline by its virtual start time, so concurrent
    /// jobs render as overlapping tracks.
    pub fn export_chrome_trace(&self) -> String {
        let st = self.inner.state.lock().expect("service state poisoned");
        let mut owned: Vec<(u32, String, Vec<EngineEvent>, Vec<Decision>)> = Vec::new();
        let mut ids: Vec<&JobId> = st.jobs.keys().collect();
        ids.sort();
        for id in ids {
            let e = &st.jobs[id];
            let Some(start) = e.start_vt else { continue };
            if e.events.is_empty() && e.decisions.is_empty() {
                continue;
            }
            let events = e.events.iter().map(|ev| ev.shifted(start)).collect();
            let decisions =
                e.decisions.iter().map(|d| Decision { at: d.at + start, ..d.clone() }).collect();
            let pid = 2 + *id as u32;
            owned.push((pid, format!("job {id}: {}", e.name), events, decisions));
        }
        let mut lanes = vec![ChromeLane {
            pid: 1,
            name: "job service".to_string(),
            events: &st.events,
            decisions: &[],
        }];
        lanes.extend(owned.iter().map(|(pid, name, events, decisions)| ChromeLane {
            pid: *pid,
            name: name.clone(),
            events,
            decisions,
        }));
        export_chrome_trace_multi(&lanes)
    }

    /// Drive the virtual-time event loop until no job is queued or
    /// running. Jobs submitted concurrently (e.g. by server connections)
    /// are picked up as long as they arrive before the loop drains.
    ///
    /// Only one driver runs at a time; concurrent callers serialize.
    pub fn run_until_idle(&self) {
        let _driver = self.inner.driver.lock().expect("service driver poisoned");
        loop {
            let start = {
                let mut st = self.inner.state.lock().expect("service state poisoned");
                loop {
                    self.finish_due(&mut st);
                    self.apply_pending_cancels(&mut st);
                    self.expire_queued_deadlines(&mut st);
                    if let Some(qi) = self.pick_startable(&st) {
                        let job = st.queued.remove(qi).expect("picked index exists");
                        break Some(self.begin_job(&mut st, job));
                    }
                    match self.next_event_vt(&st) {
                        Some(t) => st.vt = t,
                        None => break None,
                    }
                }
            };
            let Some(ctx) = start else { return };
            let run = self.execute(ctx);
            let mut st = self.inner.state.lock().expect("service state poisoned");
            st.engines.remove(&run.id);
            st.running.push(run);
        }
    }

    /// Start `job` at the current virtual time: allocate slots, record the
    /// lifecycle event, and build its isolated engine. Host execution
    /// happens outside the state lock.
    fn begin_job(&self, st: &mut State, job: QueuedJob) -> StartCtx {
        let queue_wait = st.vt.saturating_sub(job.arrival);
        st.free_slots -= job.slots;
        st.sched.on_start(job.pool);
        let entry = st.jobs.get_mut(&job.id).expect("queued job has an entry");
        entry.status = JobStatus::Running;
        entry.start_vt = Some(st.vt);
        let pool_name = entry.pool_name.clone();
        st.events.push(EngineEvent::JobStarted {
            job: job.id,
            pool: pool_name,
            queue_wait,
            at: st.vt,
        });
        self.inner.stats.add_queue_wait_nanos(queue_wait.as_nanos());
        let engine = Engine::new(self.inner.cluster.clone());
        if let Some(d) = job.deadline_vt {
            // The engine clock starts at 0, so the engine-local deadline is
            // whatever virtual budget remains after the queue wait.
            engine.set_deadline(d.saturating_sub(st.vt));
        }
        st.engines.insert(job.id, engine.clone());
        StartCtx {
            id: job.id,
            pool: job.pool,
            slots: job.slots,
            start_vt: st.vt,
            payload: job.payload,
            engine,
        }
    }

    /// Run a job's payload on its engine (host-side, no service lock held)
    /// and package the result as a virtually-running job.
    fn execute(&self, ctx: StartCtx) -> RunningJob {
        let engine = ctx.engine;
        let result: Result<String, EngineError> = match ctx.payload {
            Admitted::Native(f) => f(&engine),
            Admitted::Program(p) => {
                let inputs: HashMap<String, Bag<Value>> = p
                    .sources
                    .iter()
                    .map(|s| (s.clone(), source_bag(&engine, self.inner.seed, s)))
                    .collect();
                match p.run(engine.clone(), self.inner.config.clone(), &inputs) {
                    Ok(RtVal::Scalar(v)) => Ok(format!("scalar {v}")),
                    Ok(RtVal::Bag(b)) => match b.count() {
                        Ok(n) => Ok(format!("bag with {n} records")),
                        Err(e) => Err(e),
                    },
                    Ok(RtVal::Nested(_)) => Ok("nested bag".to_string()),
                    Err(matryoshka_ir::IrError::Engine(e)) => Err(e),
                    Err(other) => Err(EngineError::Unsupported(other.to_string())),
                }
            }
        };
        let duration = engine.sim_time();
        let sim_nanos = duration.as_nanos();
        let outcome = match result {
            Ok(result) => JobOutcome::Completed { result, sim_nanos },
            Err(EngineError::Cancelled) => {
                JobOutcome::Cancelled { reason: "cancelled by client".to_string() }
            }
            Err(EngineError::DeadlineExceeded { deadline_nanos, at_nanos }) => {
                JobOutcome::Cancelled {
                    reason: format!(
                        "deadline exceeded while running ({deadline_nanos} ns budget, \
                         aborted at {at_nanos} ns)"
                    ),
                }
            }
            Err(e) => JobOutcome::Failed { error: e.to_string(), sim_nanos },
        };
        RunningJob {
            id: ctx.id,
            pool: ctx.pool,
            slots: ctx.slots,
            end_vt: ctx.start_vt + duration,
            duration,
            outcome,
            stats: engine.stats(),
            events: engine.events(),
            decisions: engine.decisions(),
        }
    }

    /// Retire every running job whose virtual end time has been reached,
    /// in (end time, id) order for deterministic event streams.
    fn finish_due(&self, st: &mut State) {
        loop {
            let due: Option<usize> = st
                .running
                .iter()
                .enumerate()
                .filter(|(_, r)| r.end_vt.as_nanos() <= st.vt.as_nanos())
                .min_by_key(|(_, r)| (r.end_vt.as_nanos(), r.id))
                .map(|(i, _)| i);
            let Some(i) = due else { return };
            let run = st.running.remove(i);
            st.free_slots += run.slots;
            st.sched.on_finish(run.pool, run.slots, run.duration.as_nanos());
            st.cancels.remove(&run.id);
            match &run.outcome {
                JobOutcome::Completed { sim_nanos, .. } => {
                    st.events.push(EngineEvent::JobFinished {
                        job: run.id,
                        ok: true,
                        sim_nanos: *sim_nanos,
                        at: run.end_vt,
                    });
                    self.inner.stats.add_job_completed();
                }
                JobOutcome::Failed { sim_nanos, .. } => {
                    st.events.push(EngineEvent::JobFinished {
                        job: run.id,
                        ok: false,
                        sim_nanos: *sim_nanos,
                        at: run.end_vt,
                    });
                    self.inner.stats.add_job_completed();
                }
                JobOutcome::Cancelled { reason } => {
                    st.events.push(EngineEvent::JobCancelled {
                        job: run.id,
                        reason: reason.clone(),
                        at: run.end_vt,
                    });
                    self.inner.stats.add_job_cancelled();
                }
            }
            let entry = st.jobs.get_mut(&run.id).expect("running job has an entry");
            let started = entry.start_vt.expect("running job started");
            entry.status = JobStatus::Done(run.outcome.clone());
            entry.events = run.events;
            entry.decisions = run.decisions;
            entry.report = Some(JobReport {
                id: run.id,
                name: entry.name.clone(),
                pool: entry.pool_name.clone(),
                slots: run.slots,
                arrival: entry.arrival,
                started: Some(started),
                finished: run.end_vt,
                queue_wait: started.saturating_sub(entry.arrival),
                outcome: run.outcome,
                stats: run.stats,
            });
            self.inner.cv.notify_all();
        }
    }

    /// Apply client cancellations to still-queued jobs.
    fn apply_pending_cancels(&self, st: &mut State) {
        let ids: Vec<JobId> =
            st.queued.iter().filter(|q| st.cancels.contains(&q.id)).map(|q| q.id).collect();
        for id in ids {
            let vt = st.vt;
            self.cancel_queued(st, id, vt, "cancelled by client");
        }
    }

    /// Cancel queued jobs whose absolute deadline has passed (they would
    /// miss it even if started now with zero compute).
    fn expire_queued_deadlines(&self, st: &mut State) {
        let ids: Vec<(JobId, SimTime)> = st
            .queued
            .iter()
            .filter_map(|q| {
                q.deadline_vt.filter(|d| d.as_nanos() <= st.vt.as_nanos()).map(|d| (q.id, d))
            })
            .collect();
        for (id, deadline) in ids {
            self.cancel_queued(st, id, deadline, "deadline exceeded while queued");
        }
    }

    /// Remove a queued job with a cancellation outcome at virtual time
    /// `at`.
    fn cancel_queued(&self, st: &mut State, id: JobId, at: SimTime, reason: &str) {
        let Some(pos) = st.queued.iter().position(|q| q.id == id) else { return };
        st.queued.remove(pos);
        st.cancels.remove(&id);
        st.events.push(EngineEvent::JobCancelled { job: id, reason: reason.to_string(), at });
        self.inner.stats.add_job_cancelled();
        let entry = st.jobs.get_mut(&id).expect("queued job has an entry");
        let outcome = JobOutcome::Cancelled { reason: reason.to_string() };
        entry.status = JobStatus::Done(outcome.clone());
        entry.report = Some(JobReport {
            id,
            name: entry.name.clone(),
            pool: entry.pool_name.clone(),
            slots: entry.slots,
            arrival: entry.arrival,
            started: None,
            finished: at,
            queue_wait: at.saturating_sub(entry.arrival),
            outcome,
            stats: StatsSnapshot::default(),
        });
        self.inner.cv.notify_all();
    }

    /// Index into the queue of the job to start now, if any.
    ///
    /// Each pool offers its FIFO head (lowest id among its queued jobs that
    /// have arrived); a pool with a head that does not fit in the free
    /// slots, or that is at its concurrency cap, offers nothing — jobs
    /// never bypass an earlier job of their own pool. The scheduler then
    /// picks among pool heads by policy.
    fn pick_startable(&self, st: &State) -> Option<usize> {
        let pools = self.inner.config.scheduler.pools.len();
        let mut heads: Vec<Option<&QueuedJob>> = vec![None; pools];
        for q in &st.queued {
            if q.arrival.as_nanos() > st.vt.as_nanos() {
                continue;
            }
            let head = &mut heads[q.pool];
            if head.is_none_or(|h| q.id < h.id) {
                *head = Some(q);
            }
        }
        let candidates: Vec<Candidate> = heads
            .iter()
            .flatten()
            .filter(|q| st.sched.has_capacity(q.pool) && q.slots <= st.free_slots)
            .map(|q| Candidate { pool: q.pool, seq: q.id })
            .collect();
        let pick = st.sched.pick(&candidates)?;
        st.queued.iter().position(|q| q.id == pick.seq)
    }

    /// The next virtual time at which anything can change: a running job's
    /// end, a queued job's future arrival, or a queued deadline expiry.
    /// Always strictly after `st.vt` (due work was already retired).
    fn next_event_vt(&self, st: &State) -> Option<SimTime> {
        let now = st.vt.as_nanos();
        let mut next: Option<u64> = None;
        let mut consider = |t: u64| {
            if t > now {
                next = Some(next.map_or(t, |n| n.min(t)));
            }
        };
        for r in &st.running {
            consider(r.end_vt.as_nanos());
        }
        for q in &st.queued {
            consider(q.arrival.as_nanos());
            if let Some(d) = q.deadline_vt {
                consider(d.as_nanos());
            }
        }
        next.map(SimTime::from_nanos)
    }
}
