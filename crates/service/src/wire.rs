//! The line protocol spoken between `matryoshka-submit` and
//! `matryoshka-serve`.
//!
//! Requests are single ASCII lines; `SUBMIT` is followed by a
//! length-prefixed program body (raw bytes, so programs may contain
//! anything including newlines). Replies are one `OK ...` or `ERR ...`
//! line, optionally preceded by `DIAG <text>` continuation lines carrying
//! analyzer diagnostics. See `docs/SERVICE.md` for the full grammar.
//!
//! ```text
//! SUBMIT <name> <pool> <len> [slots=N] [deadline_ms=N]\n<len bytes>
//! WAIT <id> | STATUS <id> | CANCEL <id> | STATS | PING | SHUTDOWN
//! ```

use std::fmt;

use crate::job::JobId;

/// A parsed request line. For [`Command::Submit`], `len` bytes of program
/// text follow the newline on the stream.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Command {
    /// Submit a program of `len` bytes into `pool`.
    Submit {
        /// Display name (no whitespace).
        name: String,
        /// Target pool (no whitespace).
        pool: String,
        /// Byte length of the program body that follows.
        len: usize,
        /// Requested core slots (`0` = service default).
        slots: usize,
        /// Virtual deadline in milliseconds from submission.
        deadline_ms: Option<u64>,
    },
    /// Block until the job finishes; reply with its outcome.
    Wait(JobId),
    /// Report the job's lifecycle state.
    Status(JobId),
    /// Request cancellation.
    Cancel(JobId),
    /// Report service counters.
    Stats,
    /// Liveness probe.
    Ping,
    /// Stop accepting work and shut the server down.
    Shutdown,
}

/// Upper bound on `SUBMIT` body size (1 MiB) — keeps a misbehaving client
/// from ballooning server memory.
pub const MAX_PROGRAM_BYTES: usize = 1 << 20;

fn parse_id(tok: Option<&str>, what: &str) -> Result<JobId, String> {
    tok.ok_or_else(|| format!("{what} requires a job id"))?
        .parse::<JobId>()
        .map_err(|_| format!("{what}: job id must be a non-negative integer"))
}

/// Parse one request line (without its trailing newline).
pub fn parse_command(line: &str) -> Result<Command, String> {
    let mut toks = line.split_whitespace();
    let verb = toks.next().ok_or_else(|| "empty request".to_string())?;
    match verb {
        "SUBMIT" => {
            let name = toks.next().ok_or("SUBMIT requires <name> <pool> <len>")?.to_string();
            let pool = toks.next().ok_or("SUBMIT requires <name> <pool> <len>")?.to_string();
            let len: usize = toks
                .next()
                .ok_or("SUBMIT requires <name> <pool> <len>")?
                .parse()
                .map_err(|_| "SUBMIT: <len> must be a non-negative integer".to_string())?;
            if len > MAX_PROGRAM_BYTES {
                return Err(format!("SUBMIT: program too large ({len} > {MAX_PROGRAM_BYTES})"));
            }
            let mut slots = 0usize;
            let mut deadline_ms = None;
            for opt in toks {
                match opt.split_once('=') {
                    Some(("slots", v)) => {
                        slots = v
                            .parse()
                            .map_err(|_| "SUBMIT: slots must be an integer".to_string())?;
                    }
                    Some(("deadline_ms", v)) => {
                        deadline_ms =
                            Some(v.parse().map_err(|_| {
                                "SUBMIT: deadline_ms must be an integer".to_string()
                            })?);
                    }
                    _ => return Err(format!("SUBMIT: unknown option `{opt}`")),
                }
            }
            Ok(Command::Submit { name, pool, len, slots, deadline_ms })
        }
        "WAIT" => Ok(Command::Wait(parse_id(toks.next(), "WAIT")?)),
        "STATUS" => Ok(Command::Status(parse_id(toks.next(), "STATUS")?)),
        "CANCEL" => Ok(Command::Cancel(parse_id(toks.next(), "CANCEL")?)),
        "STATS" => Ok(Command::Stats),
        "PING" => Ok(Command::Ping),
        "SHUTDOWN" => Ok(Command::Shutdown),
        other => Err(format!("unknown command `{other}`")),
    }
}

impl fmt::Display for Command {
    /// Render the request line (what a client sends; no trailing newline).
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Command::Submit { name, pool, len, slots, deadline_ms } => {
                write!(f, "SUBMIT {name} {pool} {len}")?;
                if *slots != 0 {
                    write!(f, " slots={slots}")?;
                }
                if let Some(d) = deadline_ms {
                    write!(f, " deadline_ms={d}")?;
                }
                Ok(())
            }
            Command::Wait(id) => write!(f, "WAIT {id}"),
            Command::Status(id) => write!(f, "STATUS {id}"),
            Command::Cancel(id) => write!(f, "CANCEL {id}"),
            Command::Stats => f.write_str("STATS"),
            Command::Ping => f.write_str("PING"),
            Command::Shutdown => f.write_str("SHUTDOWN"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn submit_round_trips_with_options() {
        let c = Command::Submit {
            name: "wordcount".to_string(),
            pool: "batch".to_string(),
            len: 123,
            slots: 4,
            deadline_ms: Some(250),
        };
        let line = c.to_string();
        assert_eq!(line, "SUBMIT wordcount batch 123 slots=4 deadline_ms=250");
        assert_eq!(parse_command(&line).unwrap(), c);
    }

    #[test]
    fn simple_commands_parse() {
        assert_eq!(parse_command("WAIT 7").unwrap(), Command::Wait(7));
        assert_eq!(parse_command("STATUS 0").unwrap(), Command::Status(0));
        assert_eq!(parse_command("CANCEL 3").unwrap(), Command::Cancel(3));
        assert_eq!(parse_command("STATS").unwrap(), Command::Stats);
        assert_eq!(parse_command("PING").unwrap(), Command::Ping);
        assert_eq!(parse_command("SHUTDOWN").unwrap(), Command::Shutdown);
    }

    #[test]
    fn malformed_lines_are_rejected() {
        assert!(parse_command("").is_err());
        assert!(parse_command("SUBMIT onlyname").is_err());
        assert!(parse_command("SUBMIT a b notanumber").is_err());
        assert!(parse_command("SUBMIT a b 10 frobnicate=1").is_err());
        assert!(parse_command("WAIT notanid").is_err());
        assert!(parse_command("FROBNICATE").is_err());
        let too_big = format!("SUBMIT a b {}", MAX_PROGRAM_BYTES + 1);
        assert!(parse_command(&too_big).is_err());
    }
}
