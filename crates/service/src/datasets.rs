//! Deterministic seeded datasets backing program `source(name)` references.
//!
//! Wire submissions name their inputs but cannot ship data, so the service
//! materializes every source a program reads as a seeded bag of
//! `(Long, Long)` pairs — the shape all the example programs consume. The
//! generator is a pure function of `(service seed, source name)`: the same
//! service configuration always presents the same data, which is what makes
//! per-job `sim_nanos` and statistics reproducible across runs and
//! independent of scheduling ([determinism contract](crate)).

use matryoshka_engine::{Bag, Engine};
use matryoshka_ir::Value;

/// Partition count of every generated source bag.
pub const SOURCE_PARTITIONS: usize = 8;

/// SplitMix64 finalizer: a cheap, high-quality 64-bit mixer.
fn mix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// FNV-1a over the source name, so distinct names get distinct streams.
fn name_hash(name: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.bytes() {
        h = (h ^ b as u64).wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Number of records generated for `name` under `seed`: 512..=2047,
/// deterministic per `(seed, name)`.
pub fn records_for(seed: u64, name: &str) -> u64 {
    512 + mix(seed ^ name_hash(name)) % 1536
}

/// Materialize the seeded `(Long, Long)` pair bag for one source name.
///
/// Keys land in a 97-value domain (plenty of collisions for `groupByKey`
/// and joins across *different* sources, since the key domain is shared);
/// values are per-source pseudo-random.
pub fn source_bag(engine: &Engine, seed: u64, name: &str) -> Bag<Value> {
    let n = records_for(seed, name);
    let stream = mix(seed ^ name_hash(name).rotate_left(17));
    let vals: Vec<Value> = (0..n)
        .map(|i| {
            let r = mix(stream ^ i);
            Value::tuple(vec![Value::Long((r % 97) as i64), Value::Long((mix(r) % 10_000) as i64)])
        })
        .collect();
    engine.parallelize(vals, SOURCE_PARTITIONS)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let e1 = Engine::local();
        let e2 = Engine::local();
        let a = source_bag(&e1, 7, "visits").collect().unwrap();
        let b = source_bag(&e2, 7, "visits").collect().unwrap();
        assert_eq!(a.len(), b.len());
        assert!(a.iter().zip(&b).all(|(x, y)| x == y), "same seed + name => same data");
    }

    #[test]
    fn seed_and_name_change_the_stream() {
        let e = Engine::local();
        let a = source_bag(&e, 7, "visits").collect().unwrap();
        let b = source_bag(&e, 8, "visits").collect().unwrap();
        let c = source_bag(&e, 7, "edges").collect().unwrap();
        assert!(a.len() != b.len() || a.iter().zip(&b).any(|(x, y)| x != y));
        assert!(a.len() != c.len() || a.iter().zip(&c).any(|(x, y)| x != y));
    }

    #[test]
    fn record_counts_are_bounded() {
        for name in ["visits", "points", "edges", "orders", "customers", "xs", "ys"] {
            let n = records_for(42, name);
            assert!((512..=2047).contains(&n), "{name}: {n}");
        }
    }
}
