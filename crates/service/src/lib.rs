//! Multi-tenant job service: fair-share scheduling, admission control, and
//! a std-only TCP submission server.
//!
//! This crate turns the single-program engine into a shared service.
//! Clients submit `.mat` programs (or native closures, from tests and
//! benches) into named **pools**; a deterministic scheduler multiplexes a
//! fixed budget of simulated core slots across jobs under either FIFO or
//! weighted fair-share policy, with per-pool concurrency caps, a bounded
//! admission queue, per-job virtual deadlines, and cooperative
//! cancellation.
//!
//! ## Determinism contract
//!
//! Given the same service configuration, seed, and submission schedule
//! (order + virtual arrival times), every run produces **bit-identical**
//! results: each job's `sim_nanos` and [`StatsSnapshot`], the service
//! lifecycle event log, queue waits, and fair-share accounting. Three
//! design rules make this hold:
//!
//! 1. **Per-job engine isolation** — every job runs on a fresh engine, so
//!    its simulated cost and statistics are exactly those of a
//!    directly-driven run (the `golden_sim` pins transfer unchanged).
//! 2. **Virtual-time multiplexing** — jobs overlap in *virtual* time via
//!    core-slot accounting, not host threads: the event loop is a
//!    single-driver discrete-event simulation, so interleaving never
//!    depends on host timing.
//! 3. **Seeded datasets** — program sources are generated from
//!    `(seed, name)` only ([`datasets`]).
//!
//! [`StatsSnapshot`]: matryoshka_engine::StatsSnapshot
//!
//! ## Modules
//!
//! - [`job`] — job specs, outcomes, reports, rejections.
//! - [`sched`] — the pure scheduling core (policy + pool accounting).
//! - [`service`] — [`JobService`]: admission, the virtual-time loop,
//!   per-job isolation, multi-lane trace export.
//! - [`datasets`] — seeded source bags for wire-submitted programs.
//! - [`wire`] — the line protocol shared by server and client.
//! - [`server`] — the std-only TCP server behind `matryoshka-serve`.
//!
//! See `docs/SERVICE.md` for the full design.

#![warn(missing_docs)]

pub mod datasets;
pub mod job;
pub mod sched;
pub mod server;
pub mod service;
pub mod wire;

pub use job::{JobId, JobOutcome, JobPayload, JobReport, JobSpec, JobStatus, Rejection};
pub use sched::{Candidate, Scheduler};
pub use server::Server;
pub use service::JobService;
