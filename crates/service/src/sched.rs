//! The pure scheduling core: pool accounting and the next-job choice.
//!
//! Kept free of engines, clocks, and locks so the policy itself is unit
//! testable: given which pools have runnable work, [`Scheduler::pick`]
//! returns which candidate runs next. The surrounding virtual-time event
//! loop lives in [`crate::service`].

use matryoshka_core::scheduler::{SchedulerConfig, SchedulingPolicy};

/// A job the event loop could start right now: `(pool index, submission
/// sequence number)`. At most one candidate per pool is offered (the pool's
/// FIFO head), which keeps per-pool submission order intact.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Candidate {
    /// Index into the config's pool list.
    pub pool: usize,
    /// Submission sequence number (the job id).
    pub seq: u64,
}

/// Per-pool bookkeeping of the weighted fair-share policy.
#[derive(Debug, Clone)]
struct PoolState {
    weight: u64,
    max_concurrent: usize,
    running: usize,
    /// Virtual core-nanoseconds consumed (slots x sim_nanos), accumulated
    /// when jobs finish.
    consumed: u128,
}

/// Deterministic scheduling state: policy + per-pool usage accounting.
#[derive(Debug, Clone)]
pub struct Scheduler {
    policy: SchedulingPolicy,
    pools: Vec<PoolState>,
}

impl Scheduler {
    /// Build from a validated config.
    pub fn new(cfg: &SchedulerConfig) -> Scheduler {
        Scheduler {
            policy: cfg.policy,
            pools: cfg
                .pools
                .iter()
                .map(|p| PoolState {
                    weight: p.weight,
                    max_concurrent: p.max_concurrent,
                    running: 0,
                    consumed: 0,
                })
                .collect(),
        }
    }

    /// Can `pool` start another job under its concurrency cap?
    pub fn has_capacity(&self, pool: usize) -> bool {
        let p = &self.pools[pool];
        p.max_concurrent == 0 || p.running < p.max_concurrent
    }

    /// Choose the next candidate to run, deterministically.
    ///
    /// - [`SchedulingPolicy::Fifo`]: the lowest submission sequence number.
    /// - [`SchedulingPolicy::FairShare`]: the candidate whose pool has the
    ///   smallest weight-normalized consumption (`consumed / weight`,
    ///   compared exactly by cross-multiplication in `u128`); ties break by
    ///   pool index, so the choice is a pure function of the inputs.
    pub fn pick(&self, candidates: &[Candidate]) -> Option<Candidate> {
        match self.policy {
            SchedulingPolicy::Fifo => candidates.iter().min_by_key(|c| c.seq).copied(),
            SchedulingPolicy::FairShare => candidates
                .iter()
                .min_by(|a, b| {
                    let pa = &self.pools[a.pool];
                    let pb = &self.pools[b.pool];
                    // consumed_a / weight_a  vs  consumed_b / weight_b
                    let lhs = pa.consumed * pb.weight as u128;
                    let rhs = pb.consumed * pa.weight as u128;
                    lhs.cmp(&rhs).then(a.pool.cmp(&b.pool))
                })
                .copied(),
        }
    }

    /// A job of `pool` started.
    pub fn on_start(&mut self, pool: usize) {
        self.pools[pool].running += 1;
    }

    /// A job of `pool` finished after occupying `slots` cores for
    /// `sim_nanos` of virtual time.
    pub fn on_finish(&mut self, pool: usize, slots: usize, sim_nanos: u64) {
        let p = &mut self.pools[pool];
        p.running -= 1;
        p.consumed += slots as u128 * sim_nanos as u128;
    }

    /// Virtual core-nanoseconds consumed by `pool` so far.
    pub fn consumed(&self, pool: usize) -> u128 {
        self.pools[pool].consumed
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use matryoshka_core::scheduler::PoolConfig;

    fn cfg(policy: SchedulingPolicy, pools: Vec<PoolConfig>) -> SchedulerConfig {
        SchedulerConfig { policy, pools, ..SchedulerConfig::default() }
    }

    #[test]
    fn fifo_picks_lowest_sequence() {
        let s = Scheduler::new(&cfg(
            SchedulingPolicy::Fifo,
            vec![PoolConfig::new("a", 1), PoolConfig::new("b", 1)],
        ));
        let got = s.pick(&[Candidate { pool: 1, seq: 5 }, Candidate { pool: 0, seq: 9 }]);
        assert_eq!(got, Some(Candidate { pool: 1, seq: 5 }));
    }

    #[test]
    fn fair_share_prefers_the_underserved_pool() {
        let mut s = Scheduler::new(&cfg(
            SchedulingPolicy::FairShare,
            vec![PoolConfig::new("batch", 1), PoolConfig::new("interactive", 3)],
        ));
        // interactive consumed 3x batch, exactly its weight ratio: tie, so
        // pool index 0 wins.
        s.on_start(0);
        s.on_finish(0, 1, 100);
        s.on_start(1);
        s.on_finish(1, 1, 300);
        let cands = [Candidate { pool: 0, seq: 10 }, Candidate { pool: 1, seq: 11 }];
        assert_eq!(s.pick(&cands), Some(Candidate { pool: 0, seq: 10 }));
        // Push batch past its share: interactive becomes the pick.
        s.on_start(0);
        s.on_finish(0, 1, 1);
        assert_eq!(s.pick(&cands), Some(Candidate { pool: 1, seq: 11 }));
    }

    #[test]
    fn capacity_caps_respect_running_counts() {
        let mut s = Scheduler::new(&cfg(
            SchedulingPolicy::Fifo,
            vec![PoolConfig::new("capped", 1).with_max_concurrent(1)],
        ));
        assert!(s.has_capacity(0));
        s.on_start(0);
        assert!(!s.has_capacity(0));
        s.on_finish(0, 1, 10);
        assert!(s.has_capacity(0));
    }

    #[test]
    fn slots_scale_consumption() {
        let mut s = Scheduler::new(&cfg(
            SchedulingPolicy::FairShare,
            vec![PoolConfig::new("a", 1), PoolConfig::new("b", 1)],
        ));
        s.on_start(0);
        s.on_finish(0, 4, 10); // 4 slots x 10ns = 40 core-ns
        s.on_start(1);
        s.on_finish(1, 1, 10); // 10 core-ns
        let cands = [Candidate { pool: 0, seq: 1 }, Candidate { pool: 1, seq: 2 }];
        assert_eq!(s.pick(&cands).unwrap().pool, 1, "narrow jobs consumed less");
        assert_eq!(s.consumed(0), 40);
    }
}
