//! Job descriptions, outcomes, and per-job reports.

use std::fmt;

use matryoshka_engine::sim::SimTime;
use matryoshka_engine::{Engine, EngineError, StatsSnapshot};
use matryoshka_ir::Dialect;

/// Service-wide job identifier, assigned in submission order (rejected
/// submissions consume ids too, so ids line up with the event log).
pub type JobId = u64;

/// A host-native job body: runs an arbitrary program against the job's own
/// engine and returns a human-readable result summary. Used by tests and
/// benches; wire submissions always carry programs.
pub type NativeJob = Box<dyn FnOnce(&Engine) -> Result<String, EngineError> + Send>;

/// What a job executes.
pub enum JobPayload {
    /// A `.mat` program (checked by the IR analyzer at admission; its
    /// sources are bound to seeded service datasets at run time).
    Program {
        /// Program text.
        source: String,
        /// Dialect to check and rewrite under.
        dialect: Dialect,
    },
    /// A native closure (see [`NativeJob`]).
    Native(NativeJob),
}

impl fmt::Debug for JobPayload {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            JobPayload::Program { source, dialect } => f
                .debug_struct("Program")
                .field("source_len", &source.len())
                .field("dialect", dialect)
                .finish(),
            JobPayload::Native(_) => f.write_str("Native(..)"),
        }
    }
}

/// A job submission: what to run, where, and within which limits.
#[derive(Debug)]
pub struct JobSpec {
    /// Client-supplied display name.
    pub name: String,
    /// Scheduler pool to run in (must exist in the service's
    /// [`SchedulerConfig`](matryoshka_core::SchedulerConfig)).
    pub pool: String,
    /// Simulated core slots the job occupies while running; `0` means the
    /// scheduler's `default_slots`. Clamped to the service's `total_slots`.
    pub slots: usize,
    /// Virtual deadline measured from submission: if the job has not
    /// *finished* by `arrival + deadline` it is cancelled — still queued
    /// jobs at expiry never start, and running jobs abort deterministically
    /// on their simulated clock.
    pub deadline: Option<SimTime>,
    /// What to execute.
    pub payload: JobPayload,
}

impl JobSpec {
    /// A `.mat` program job in the `default` pool (Matryoshka dialect).
    pub fn program(name: impl Into<String>, source: impl Into<String>) -> JobSpec {
        JobSpec {
            name: name.into(),
            pool: "default".to_string(),
            slots: 0,
            deadline: None,
            payload: JobPayload::Program { source: source.into(), dialect: Dialect::Matryoshka },
        }
    }

    /// A native job in the `default` pool.
    pub fn native(
        name: impl Into<String>,
        body: impl FnOnce(&Engine) -> Result<String, EngineError> + Send + 'static,
    ) -> JobSpec {
        JobSpec {
            name: name.into(),
            pool: "default".to_string(),
            slots: 0,
            deadline: None,
            payload: JobPayload::Native(Box::new(body)),
        }
    }

    /// Submit to the named pool instead of `default`.
    pub fn in_pool(mut self, pool: impl Into<String>) -> JobSpec {
        self.pool = pool.into();
        self
    }

    /// Occupy `slots` simulated cores while running.
    pub fn with_slots(mut self, slots: usize) -> JobSpec {
        self.slots = slots;
        self
    }

    /// Cancel the job if not finished `deadline` of virtual time after
    /// submission.
    pub fn with_deadline(mut self, deadline: SimTime) -> JobSpec {
        self.deadline = Some(deadline);
        self
    }
}

/// How a job ended.
#[derive(Debug, Clone, PartialEq)]
pub enum JobOutcome {
    /// The program ran to completion.
    Completed {
        /// Human-readable result summary (e.g. `bag with 42 records`).
        result: String,
        /// The job's own simulated execution time in nanoseconds.
        sim_nanos: u64,
    },
    /// The program raised an engine or lowering error (e.g. simulated OOM).
    Failed {
        /// Rendered error.
        error: String,
        /// Simulated nanoseconds consumed before the failure.
        sim_nanos: u64,
    },
    /// Cancelled by client request or a missed deadline.
    Cancelled {
        /// Why the job was cancelled.
        reason: String,
    },
}

/// Where a job currently is in its lifecycle.
#[derive(Debug, Clone, PartialEq)]
pub enum JobStatus {
    /// Admitted, waiting for core slots.
    Queued,
    /// Holding core slots (host execution may already have finished; the
    /// job stays `Running` until its virtual end time is reached).
    Running,
    /// Finished, with an outcome.
    Done(JobOutcome),
}

/// Final accounting of one job, available once it leaves the queue.
#[derive(Debug, Clone, PartialEq)]
pub struct JobReport {
    /// Job id.
    pub id: JobId,
    /// Display name from the spec.
    pub name: String,
    /// Pool it was admitted to.
    pub pool: String,
    /// Core slots it occupied.
    pub slots: usize,
    /// Virtual submission time.
    pub arrival: SimTime,
    /// Virtual start time (`None` if cancelled while queued).
    pub started: Option<SimTime>,
    /// Virtual completion time.
    pub finished: SimTime,
    /// Time spent queued (start - arrival; for queue-cancelled jobs, the
    /// whole stay).
    pub queue_wait: SimTime,
    /// How the job ended.
    pub outcome: JobOutcome,
    /// The job's own engine statistics (all zeros if it never started).
    pub stats: StatsSnapshot,
}

/// A refused submission: the reason, and — for analyzer rejections — the
/// individual `MAT0xx` diagnostic lines.
#[derive(Debug, Clone, PartialEq)]
pub struct Rejection {
    /// The id the submission consumed (ties the refusal to the
    /// `JobRejected` event).
    pub id: JobId,
    /// One-line reason.
    pub reason: String,
    /// Rendered `MAT0xx` diagnostics (empty unless the analyzer rejected).
    pub diagnostics: Vec<String>,
}

impl fmt::Display for Rejection {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "job {} rejected: {}", self.id, self.reason)
    }
}

impl std::error::Error for Rejection {}
