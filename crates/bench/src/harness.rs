//! Experiment harness: run one strategy on one configuration of the
//! simulated cluster, record simulated time + outcome, print paper-style
//! tables.
//!
//! Set `MATRYOSHKA_TRACE_DIR=<dir>` to have [`run_case_named`] enable the
//! engine's structured tracing and dump each case's run as
//! `<slug>-<seq>.trace.json` (events + decisions + summary) and
//! `<slug>-<seq>.chrome.json` (Chrome Trace Event Format, loadable in
//! Perfetto). See `docs/OBSERVABILITY.md`.

use std::sync::atomic::{AtomicU64, Ordering};

use matryoshka_engine::{ClusterConfig, Engine, EngineError, StatsSnapshot};

/// What happened when a strategy ran.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Outcome {
    /// Completed.
    Ok,
    /// Failed with a simulated OutOfMemory (plotted as "OOM" in the paper).
    Oom,
    /// The strategy cannot express the program (DIQL + inner control flow).
    Unsupported,
}

/// One measured run.
#[derive(Debug, Clone)]
pub struct Measurement {
    /// Completion status.
    pub outcome: Outcome,
    /// Simulated runtime in seconds (time until completion or failure).
    pub seconds: f64,
    /// Engine statistics delta for the run.
    pub stats: StatsSnapshot,
}

/// One row of a figure: `(series, x) -> measurement`.
#[derive(Debug, Clone)]
pub struct Row {
    /// Figure identifier, e.g. "fig3/pagerank".
    pub figure: String,
    /// Line in the plot, e.g. "matryoshka".
    pub series: String,
    /// X coordinate, e.g. the number of inner computations.
    pub x: u64,
    /// The measurement.
    pub m: Measurement,
}

/// Run `f` on a fresh engine over `cfg` and measure simulated time and
/// statistics. Simulated OOM becomes [`Outcome::Oom`]; `Unsupported` becomes
/// [`Outcome::Unsupported`]; any other engine error panics (it would be a
/// harness bug).
pub fn run_case(
    cfg: ClusterConfig,
    f: impl FnOnce(&Engine) -> matryoshka_engine::Result<()>,
) -> Measurement {
    run_case_named("case", cfg, f)
}

/// Sequence number for trace dump filenames (several cases can share a name).
static TRACE_SEQ: AtomicU64 = AtomicU64::new(0);

/// [`run_case`] with a name used for trace dumps. When the
/// `MATRYOSHKA_TRACE_DIR` environment variable is set, tracing is enabled on
/// the case's engine and the run is exported to
/// `$MATRYOSHKA_TRACE_DIR/<slug>-<seq>.trace.json` (plus a `.chrome.json`
/// Chrome trace); export failures are reported to stderr, never fail a run.
pub fn run_case_named(
    name: &str,
    cfg: ClusterConfig,
    f: impl FnOnce(&Engine) -> matryoshka_engine::Result<()>,
) -> Measurement {
    let trace_dir = std::env::var_os("MATRYOSHKA_TRACE_DIR");
    let engine = Engine::new(cfg);
    if trace_dir.is_some() {
        engine.enable_tracing();
    }
    let t0 = engine.sim_time();
    let s0 = engine.stats();
    let outcome = match f(&engine) {
        Ok(()) => Outcome::Ok,
        Err(EngineError::OutOfMemory { .. }) => Outcome::Oom,
        Err(EngineError::Unsupported(_)) => Outcome::Unsupported,
        Err(e) => panic!("unexpected engine error in experiment: {e}"),
    };
    if let Some(dir) = trace_dir {
        dump_traces(&engine, std::path::Path::new(&dir), name);
    }
    Measurement {
        outcome,
        seconds: (engine.sim_time() - t0).as_secs_f64(),
        stats: engine.stats().since(&s0),
    }
}

/// Write `<slug>-<seq>.trace.json` and `<slug>-<seq>.chrome.json` under
/// `dir`, creating it if needed. Best-effort: failures go to stderr.
fn dump_traces(engine: &Engine, dir: &std::path::Path, name: &str) {
    let slug: String = name
        .chars()
        .map(|c| if c.is_ascii_alphanumeric() || c == '-' || c == '_' { c } else { '-' })
        .collect();
    let seq = TRACE_SEQ.fetch_add(1, Ordering::Relaxed);
    if let Err(e) = std::fs::create_dir_all(dir) {
        eprintln!("trace dump: cannot create {}: {e}", dir.display());
        return;
    }
    for (suffix, contents) in
        [("trace.json", engine.trace_json()), ("chrome.json", engine.chrome_trace())]
    {
        let path = dir.join(format!("{slug}-{seq:03}.{suffix}"));
        if let Err(e) = std::fs::write(&path, contents) {
            eprintln!("trace dump: cannot write {}: {e}", path.display());
        }
    }
}

/// Format one measurement the way the paper's plots label failures.
pub fn fmt_measurement(m: &Measurement) -> String {
    match m.outcome {
        Outcome::Ok => format!("{:.1}", m.seconds),
        Outcome::Oom => "OOM".to_string(),
        Outcome::Unsupported => "n/a".to_string(),
    }
}

/// Print rows grouped by figure as a markdown-ish table:
/// one line per x, one column per series.
pub fn print_rows(rows: &[Row]) {
    use std::collections::BTreeMap;
    let mut by_figure: BTreeMap<&str, Vec<&Row>> = BTreeMap::new();
    for r in rows {
        by_figure.entry(r.figure.as_str()).or_default().push(r);
    }
    for (figure, rows) in by_figure {
        let mut series: Vec<&str> = Vec::new();
        for r in &rows {
            if !series.contains(&r.series.as_str()) {
                series.push(&r.series);
            }
        }
        let mut xs: Vec<u64> = rows.iter().map(|r| r.x).collect();
        xs.sort_unstable();
        xs.dedup();
        println!("\n== {figure} (simulated seconds) ==");
        println!(
            "{:>10} | {}",
            "x",
            series.iter().map(|s| format!("{s:>16}")).collect::<Vec<_>>().join(" | ")
        );
        for x in xs {
            let cells: Vec<String> = series
                .iter()
                .map(|s| {
                    rows.iter()
                        .find(|r| r.x == x && r.series == *s)
                        .map(|r| format!("{:>16}", fmt_measurement(&r.m)))
                        .unwrap_or_else(|| format!("{:>16}", "-"))
                })
                .collect();
            println!("{x:>10} | {}", cells.join(" | "));
        }
    }
}

/// Print rows as CSV (for downstream plotting):
/// `figure,series,x,outcome,seconds,jobs,shuffle_bytes,spill_bytes`.
pub fn print_csv(rows: &[Row]) {
    println!("figure,series,x,outcome,seconds,jobs,shuffle_bytes,spill_bytes");
    for r in rows {
        let outcome = match r.m.outcome {
            Outcome::Ok => "ok",
            Outcome::Oom => "oom",
            Outcome::Unsupported => "unsupported",
        };
        println!(
            "{},{},{},{},{:.3},{},{},{}",
            r.figure,
            r.series,
            r.x,
            outcome,
            r.m.seconds,
            r.m.stats.jobs,
            r.m.stats.shuffle_bytes,
            r.m.stats.spill_bytes
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use matryoshka_engine::GB;

    #[test]
    fn run_case_measures_time_and_stats() {
        let m = run_case(ClusterConfig::local_test(), |e| {
            e.parallelize((0..100).collect::<Vec<u32>>(), 4).count()?;
            Ok(())
        });
        assert_eq!(m.outcome, Outcome::Ok);
        assert!(m.seconds > 0.0);
        assert_eq!(m.stats.jobs, 1);
    }

    #[test]
    fn run_case_captures_oom() {
        let m = run_case(ClusterConfig::local_test(), |e| {
            e.broadcast(0u8, 100 * GB)?;
            Ok(())
        });
        assert_eq!(m.outcome, Outcome::Oom);
        assert_eq!(fmt_measurement(&m), "OOM");
    }

    #[test]
    fn run_case_captures_unsupported() {
        let m = run_case(ClusterConfig::local_test(), |_| {
            Err(matryoshka_engine::EngineError::Unsupported("loops".into()))
        });
        assert_eq!(m.outcome, Outcome::Unsupported);
        assert_eq!(fmt_measurement(&m), "n/a");
    }

    #[test]
    fn trace_dir_env_dumps_json_and_chrome_traces() {
        // Workspace-relative scratch dir (tests must not write outside it).
        let dir =
            std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../target/trace-dump-test");
        let _ = std::fs::remove_dir_all(&dir);
        std::env::set_var("MATRYOSHKA_TRACE_DIR", &dir);
        let m = run_case_named("harness self-test", ClusterConfig::local_test(), |e| {
            e.generate(1000, 4, |i| (i % 7, 1u64)).reduce_by_key(|a, b| a + b).count()?;
            Ok(())
        });
        std::env::remove_var("MATRYOSHKA_TRACE_DIR");
        assert_eq!(m.outcome, Outcome::Ok);
        let names: Vec<String> = std::fs::read_dir(&dir)
            .expect("trace dir created")
            .map(|e| e.unwrap().file_name().into_string().unwrap())
            .filter(|n| n.starts_with("harness-self-test-"))
            .collect();
        assert!(names.iter().any(|n| n.ends_with(".trace.json")), "json dump missing: {names:?}");
        assert!(
            names.iter().any(|n| n.ends_with(".chrome.json")),
            "chrome dump missing: {names:?}"
        );
        let json_name = names.iter().find(|n| n.ends_with(".trace.json")).unwrap();
        let json = std::fs::read_to_string(dir.join(json_name)).unwrap();
        assert!(json.contains("\"summary\""));
        assert!(json.contains("\"shuffle\""), "the reduce_by_key shuffle must be in the trace");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
