//! Fig. 9 (paper Sec. 9.7): the weak-scaling experiment at 8x larger inputs
//! on the larger 36-machine cluster (40 threads/machine, 100 GB memory per
//! worker): per-group PageRank at 160 GB and Bounce Rate at 384 GB.
//! Outer-parallel runs out of memory in all Bounce Rate cases; Matryoshka's
//! speedup over inner-parallel grows with the input.

use matryoshka_core::MatryoshkaConfig;
use matryoshka_datagen::{visit_log, KeyDist, VisitSpec};
use matryoshka_engine::ClusterConfig;

use crate::figures::{fig3, fig5};
use crate::harness::{run_case, Row};
use crate::profile::{gb, Profile};

/// The Fig. 9 sweeps.
pub fn run(profile: Profile) -> Vec<Row> {
    let mut rows = Vec::new();
    let cluster = ClusterConfig::paper_large_cluster;

    // Per-group PageRank at 160 GB (8x the Fig. 3 input).
    for &groups in &profile.sweep(&[64, 128, 256, 512, 1024], &[64, 1024]) {
        let (edges, record_bytes) = fig3::pagerank_input(profile, groups, gb(160));
        for strategy in ["matryoshka", "inner-parallel", "outer-parallel"] {
            let m = run_case(cluster(), |e| {
                fig3::run_pagerank_strategy(
                    e,
                    strategy,
                    &edges,
                    record_bytes,
                    MatryoshkaConfig::optimized(),
                    0.0,
                )
            });
            rows.push(Row {
                figure: "fig9/pagerank-160GB".into(),
                series: strategy.into(),
                x: groups,
                m,
            });
        }
    }

    // Bounce Rate at 384 GB (8x the Fig. 5 input).
    let records = profile.records(1 << 19);
    let rb = gb(384) / records as f64;
    for &groups in &profile.sweep(&[32, 64, 128, 256, 512], &[32, 512]) {
        let visits = visit_log(&VisitSpec {
            visits: records,
            groups: groups as u32,
            visitors_per_group: (records / groups / 3).max(8),
            bounce_fraction: 0.3,
            key_dist: KeyDist::Uniform,
            seed: 42,
        });
        for strategy in ["matryoshka", "inner-parallel", "outer-parallel"] {
            let m = run_case(cluster(), |e| fig5::run_strategy(e, strategy, &visits, rb));
            rows.push(Row {
                figure: "fig9/bounce-rate-384GB".into(),
                series: strategy.into(),
                x: groups,
                m,
            });
        }
    }
    rows
}
