//! One module per paper figure; each exposes `run(profile) -> Vec<Row>`.

pub mod ablations;
pub mod fig1;
pub mod fig3;
pub mod fig4;
pub mod fig5;
pub mod fig6;
pub mod fig7;
pub mod fig8;
pub mod fig9;
pub mod recovery;
pub mod service;
