//! Fig. 6 (paper Sec. 9.4): Bounce Rate against DIQL at a reduced 12 GB
//! input, where DIQL's outer-parallel fallback survives and execution times
//! can actually be compared (the paper reports Matryoshka up to 6.6x
//! faster).

use crate::figures::fig5;
use crate::harness::Row;
use crate::profile::{gb, Profile};

/// The Fig. 6 sweep. The group range starts at 32: below that even 12 GB
/// groups exceed a worker under the outer-parallel plan (the paper's figure
/// only shows the region where DIQL completes).
pub fn run(profile: Profile) -> Vec<Row> {
    fig5::weak_scaling(
        profile,
        "fig6/bounce-rate-vs-diql-12GB",
        gb(12),
        &profile.sweep(&[32, 64, 128, 256, 512], &[32, 128, 512]),
        &["matryoshka", "diql"],
    )
}
