//! Fig. 5 (paper Sec. 9.4): Bounce Rate — the task *without* control flow —
//! weak scaling over the number of inner computations at a 48 GB input,
//! plus scale-out at 256 inner computations. DIQL is included: it falls back
//! to the outer-parallel plan and runs out of memory at this input size.

use matryoshka_core::MatryoshkaConfig;
use matryoshka_datagen::{visit_log, KeyDist, VisitSpec};
use matryoshka_engine::{ClusterConfig, Engine};
use matryoshka_tasks::bounce_rate;

use crate::harness::{run_case, Row};
use crate::profile::{gb, Profile};

/// Real record count at the `Full` profile (modeled volume stays 48 GB).
const FULL_RECORDS: u64 = 1 << 19;

fn spec(records: u64, groups: u64, key_dist: KeyDist) -> VisitSpec {
    VisitSpec {
        visits: records,
        groups: groups as u32,
        visitors_per_group: (records / groups / 3).max(8),
        bounce_fraction: 0.3,
        key_dist,
        seed: 42,
    }
}

/// One Bounce Rate case on a fresh engine.
pub fn run_strategy(
    engine: &Engine,
    strategy: &str,
    visits: &[(u32, u64)],
    record_bytes: f64,
) -> matryoshka_engine::Result<()> {
    let bag = || {
        engine.parallelize_with_bytes(
            visits.to_vec(),
            engine.config().default_parallelism,
            record_bytes,
        )
    };
    match strategy {
        "matryoshka" => {
            bounce_rate::matryoshka(engine, &bag(), MatryoshkaConfig::optimized())?;
        }
        "matryoshka-adaptive" => {
            bounce_rate::matryoshka(engine, &bag(), MatryoshkaConfig::adaptive())?;
        }
        "outer-parallel" => {
            bounce_rate::outer_parallel(engine, &bag())?;
        }
        "inner-parallel" => {
            let groups = bounce_rate::split_by_group(visits);
            bounce_rate::inner_parallel(engine, &groups, record_bytes)?;
        }
        "diql" => {
            bounce_rate::diql_like(engine, &bag())?;
        }
        other => panic!("unknown strategy {other}"),
    }
    Ok(())
}

/// Weak scaling at a given modeled volume (Fig. 5 top uses 48 GB; Fig. 6
/// reuses this at 12 GB).
pub fn weak_scaling(
    profile: Profile,
    figure: &str,
    total_bytes: f64,
    groups_sweep: &[u64],
    strategies: &[&str],
) -> Vec<Row> {
    let records = profile.records(FULL_RECORDS);
    let record_bytes = total_bytes / records as f64;
    let mut rows = Vec::new();
    for &groups in groups_sweep {
        let visits = visit_log(&spec(records, groups, KeyDist::Uniform));
        for &strategy in strategies {
            let m = run_case(ClusterConfig::paper_small_cluster(), |e| {
                run_strategy(e, strategy, &visits, record_bytes)
            });
            rows.push(Row {
                figure: figure.to_string(),
                series: strategy.to_string(),
                x: groups,
                m,
            });
        }
    }
    rows
}

/// The full Fig. 5: weak scaling at 48 GB plus scale-out at 256 groups.
pub fn run(profile: Profile) -> Vec<Row> {
    let mut rows = weak_scaling(
        profile,
        "fig5/bounce-rate/weak-scaling-48GB",
        gb(48),
        &profile.sweep(&[4, 8, 16, 32, 64, 128, 256], &[4, 32, 256]),
        &["matryoshka", "inner-parallel", "outer-parallel", "diql"],
    );
    // Scale-out: 256 inner computations, varying machine count.
    let records = profile.records(FULL_RECORDS);
    let record_bytes = gb(48) / records as f64;
    let visits = visit_log(&spec(records, 256, KeyDist::Uniform));
    for machines in profile.sweep(&[5, 10, 15, 20, 25], &[5, 25]) {
        for strategy in ["matryoshka", "inner-parallel", "outer-parallel", "diql"] {
            let m = run_case(ClusterConfig::with_machines(machines as usize), |e| {
                run_strategy(e, strategy, &visits, record_bytes)
            });
            rows.push(Row {
                figure: "fig5/bounce-rate/scale-out-256".to_string(),
                series: strategy.to_string(),
                x: machines,
                m,
            });
        }
    }
    rows
}
