//! Fig. 7 (paper Sec. 9.5): data skew. The grouping keys of Bounce Rate and
//! per-group PageRank are drawn from a Zipf distribution (1024 groups: a few
//! giant groups, many tiny ones). Outer-parallel fails with OOM (the giant
//! group is one giant task), inner-parallel pays 1024 jobs-worth of
//! overhead, and Matryoshka is within ~15% of its unskewed runtime.

use matryoshka_core::MatryoshkaConfig;
use matryoshka_datagen::{grouped_edges, visit_log, GroupedGraphSpec, KeyDist, VisitSpec};
use matryoshka_engine::ClusterConfig;
use matryoshka_tasks::pagerank;

use crate::figures::{fig3, fig5};
use crate::harness::{run_case, Row};
use crate::profile::{gb, Profile};

const GROUPS: u64 = 1024;
const ZIPF_EXPONENT: f64 = 1.0;

/// The Fig. 7 cases: for each task, the three strategies on Zipf-skewed
/// keys, plus Matryoshka on unskewed data of the same size (x=0 row) — the
/// paper's "within 15% of running on unskewed data" check.
pub fn run(profile: Profile) -> Vec<Row> {
    let mut rows = Vec::new();

    // Bounce Rate, 24 GB, Zipf keys.
    let records = profile.records(1 << 19);
    let rb = gb(24) / records as f64;
    let mk_visits = |dist: KeyDist| {
        visit_log(&VisitSpec {
            visits: records,
            groups: GROUPS as u32,
            visitors_per_group: (records / GROUPS / 3).max(8),
            bounce_fraction: 0.3,
            key_dist: dist,
            seed: 42,
        })
    };
    let skewed = mk_visits(KeyDist::Zipf(ZIPF_EXPONENT));
    for strategy in ["matryoshka", "inner-parallel", "outer-parallel"] {
        let m = run_case(ClusterConfig::paper_small_cluster(), |e| {
            fig5::run_strategy(e, strategy, &skewed, rb)
        });
        rows.push(Row { figure: "fig7/bounce-rate-zipf".into(), series: strategy.into(), x: 1, m });
    }
    let unskewed = mk_visits(KeyDist::Uniform);
    let m = run_case(ClusterConfig::paper_small_cluster(), |e| {
        fig5::run_strategy(e, "matryoshka", &unskewed, rb)
    });
    rows.push(Row {
        figure: "fig7/bounce-rate-zipf".into(),
        series: "matryoshka-unskewed".into(),
        x: 1,
        m,
    });

    // Per-group PageRank, 20 GB, Zipf group sizes.
    let edges_n = profile.records(1 << 18);
    let erb = gb(20) / edges_n as f64;
    let mk_edges = |dist: KeyDist| {
        grouped_edges(&GroupedGraphSpec {
            total_edges: edges_n,
            groups: GROUPS as u32,
            vertices_per_group: ((edges_n / GROUPS) / 10).max(2) as u32,
            key_dist: dist,
            seed: 7,
        })
    };
    let skewed_edges = mk_edges(KeyDist::Zipf(ZIPF_EXPONENT));
    for strategy in ["matryoshka", "inner-parallel", "outer-parallel"] {
        let m = run_case(ClusterConfig::paper_small_cluster(), |e| {
            fig3::run_pagerank_strategy(
                e,
                strategy,
                &skewed_edges,
                erb,
                MatryoshkaConfig::optimized(),
                0.0,
            )
        });
        rows.push(Row { figure: "fig7/pagerank-zipf".into(), series: strategy.into(), x: 1, m });
    }
    let unskewed_edges = mk_edges(KeyDist::Uniform);
    let m = run_case(ClusterConfig::paper_small_cluster(), |e| {
        fig3::run_pagerank_strategy(
            e,
            "matryoshka",
            &unskewed_edges,
            erb,
            MatryoshkaConfig::optimized(),
            0.0,
        )
    });
    rows.push(Row {
        figure: "fig7/pagerank-zipf".into(),
        series: "matryoshka-unskewed".into(),
        x: 1,
        m,
    });

    // Sanity anchor for the harness user: a skewed inner-parallel PageRank
    // is dominated by per-group jobs; surface the group count explicitly.
    let _ = pagerank::split_by_group(&skewed_edges).len();
    rows
}
