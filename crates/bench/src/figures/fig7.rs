//! Fig. 7 (paper Sec. 9.5): data skew. The grouping keys of Bounce Rate and
//! per-group PageRank are drawn from a Zipf distribution (1024 groups: a few
//! giant groups, many tiny ones). Outer-parallel fails with OOM (the giant
//! group is one giant task), inner-parallel pays 1024 jobs-worth of
//! overhead, and Matryoshka is within ~15% of its unskewed runtime.
//!
//! On top of the paper's comparison, this figure carries the adaptive
//! re-optimizer's headline experiment (`docs/ADAPTIVE.md`): a
//! `matryoshka-adaptive` series next to each static `matryoshka` one, and a
//! Zipf-exponent sweep ([`skew_sweep`]) where per-group PageRank carries fat
//! per-topic scalars (Topic-Sensitive-style auxiliary state) so the tag
//! joins repartition — the setting where stage-boundary statistics pay:
//! coalescing trims the over-partitioned shuffles, join switching re-checks
//! broadcastability per iteration, and salting splits the hot Zipf
//! partition. `cargo run --release --bin fig7_skew` prints the rows and
//! writes them to `BENCH_skew.json`.

use matryoshka_core::MatryoshkaConfig;
use matryoshka_datagen::{grouped_edges, visit_log, GroupedGraphSpec, KeyDist, VisitSpec};
use matryoshka_engine::ClusterConfig;
use matryoshka_tasks::pagerank;

use crate::figures::{fig3, fig5};
use crate::harness::{run_case, Row};
use crate::profile::{gb, Profile};

const GROUPS: u64 = 1024;
const ZIPF_EXPONENT: f64 = 1.0;

/// Modeled bytes of each per-group scalar in the skew sweep: 1024 groups at
/// 512 KiB each put the full per-tag scalar relation (512 MiB) over the
/// broadcast cap of the paper cluster (~440 MiB), so the static optimizer
/// repartition-joins by tag and the Zipf hot tag lands on one reduce task.
pub const SWEEP_SCALAR_BYTES: f64 = (512 * 1024) as f64;

/// Build the Fig. 7 grouped-PageRank edges at a given key distribution.
pub fn sweep_edges(profile: Profile, dist: KeyDist) -> (Vec<(u32, (u64, u64))>, f64) {
    let edges_n = profile.records(1 << 18);
    let spec = GroupedGraphSpec {
        total_edges: edges_n,
        groups: GROUPS as u32,
        vertices_per_group: ((edges_n / GROUPS) / 10).max(2) as u32,
        key_dist: dist,
        seed: 7,
    };
    (grouped_edges(&spec), gb(20) / edges_n as f64)
}

/// The Fig. 7 cases: for each task, the three strategies on Zipf-skewed
/// keys, plus Matryoshka on unskewed data of the same size (x=0 row) — the
/// paper's "within 15% of running on unskewed data" check — plus the
/// adaptive re-optimizer next to each static Matryoshka line and the
/// Zipf-exponent sweep.
pub fn run(profile: Profile) -> Vec<Row> {
    let mut rows = Vec::new();

    // Bounce Rate, 24 GB, Zipf keys.
    let records = profile.records(1 << 19);
    let rb = gb(24) / records as f64;
    let mk_visits = |dist: KeyDist| {
        visit_log(&VisitSpec {
            visits: records,
            groups: GROUPS as u32,
            visitors_per_group: (records / GROUPS / 3).max(8),
            bounce_fraction: 0.3,
            key_dist: dist,
            seed: 42,
        })
    };
    let skewed = mk_visits(KeyDist::Zipf(ZIPF_EXPONENT));
    for strategy in ["matryoshka", "matryoshka-adaptive", "inner-parallel", "outer-parallel"] {
        let m = run_case(ClusterConfig::paper_small_cluster(), |e| {
            fig5::run_strategy(e, strategy, &skewed, rb)
        });
        rows.push(Row { figure: "fig7/bounce-rate-zipf".into(), series: strategy.into(), x: 1, m });
    }
    let unskewed = mk_visits(KeyDist::Uniform);
    let m = run_case(ClusterConfig::paper_small_cluster(), |e| {
        fig5::run_strategy(e, "matryoshka", &unskewed, rb)
    });
    rows.push(Row {
        figure: "fig7/bounce-rate-zipf".into(),
        series: "matryoshka-unskewed".into(),
        x: 1,
        m,
    });

    // Per-group PageRank, 20 GB, Zipf group sizes.
    let (skewed_edges, erb) = sweep_edges(profile, KeyDist::Zipf(ZIPF_EXPONENT));
    for (strategy, cfg) in [
        ("matryoshka", MatryoshkaConfig::optimized()),
        ("matryoshka-adaptive", MatryoshkaConfig::adaptive()),
        ("inner-parallel", MatryoshkaConfig::optimized()),
        ("outer-parallel", MatryoshkaConfig::optimized()),
    ] {
        let engine_strategy = strategy.strip_suffix("-adaptive").unwrap_or(strategy);
        let m = run_case(ClusterConfig::paper_small_cluster(), |e| {
            fig3::run_pagerank_strategy(e, engine_strategy, &skewed_edges, erb, cfg, 0.0)
        });
        rows.push(Row { figure: "fig7/pagerank-zipf".into(), series: strategy.into(), x: 1, m });
    }
    let (unskewed_edges, erb) = sweep_edges(profile, KeyDist::Uniform);
    let m = run_case(ClusterConfig::paper_small_cluster(), |e| {
        fig3::run_pagerank_strategy(
            e,
            "matryoshka",
            &unskewed_edges,
            erb,
            MatryoshkaConfig::optimized(),
            0.0,
        )
    });
    rows.push(Row {
        figure: "fig7/pagerank-zipf".into(),
        series: "matryoshka-unskewed".into(),
        x: 1,
        m,
    });

    // Sanity anchor for the harness user: a skewed inner-parallel PageRank
    // is dominated by per-group jobs; surface the group count explicitly.
    let _ = pagerank::split_by_group(&skewed_edges).len();

    rows.extend(skew_sweep(profile));
    rows
}

/// The adaptive headline: static vs. adaptive Matryoshka on per-group
/// PageRank with fat per-topic scalars, sweeping the Zipf exponent of the
/// group-size distribution. `x` is the exponent times 100 (x=0 is the
/// uniform baseline). The acceptance bar for the re-optimizer is the
/// highest-skew point of this sweep.
pub fn skew_sweep(profile: Profile) -> Vec<Row> {
    let mut rows = Vec::new();
    for &x in &profile.sweep(&[0, 50, 100, 150], &[0, 100, 150]) {
        let dist = if x == 0 { KeyDist::Uniform } else { KeyDist::Zipf(x as f64 / 100.0) };
        let (edges, erb) = sweep_edges(profile, dist);
        for (series, cfg) in [
            ("matryoshka", MatryoshkaConfig::optimized()),
            ("matryoshka-adaptive", MatryoshkaConfig::adaptive()),
        ] {
            let m = run_case(ClusterConfig::paper_small_cluster(), |e| {
                fig3::run_pagerank_strategy(
                    e,
                    "matryoshka",
                    &edges,
                    erb,
                    cfg.clone(),
                    SWEEP_SCALAR_BYTES,
                )
            });
            rows.push(Row {
                figure: "fig7/pagerank-skew-sweep".into(),
                series: series.into(),
                x,
                m,
            });
        }
    }
    rows
}
