//! Fig. 4 (paper Sec. 9.3): scale-out — runtime vs. machine count at 64
//! inner computations, for all four tasks. Matryoshka scales near-linearly;
//! outer-parallel flattens (parallelism capped by the group count);
//! inner-parallel barely improves (job-launch and task-scheduling overheads
//! grow with the cluster).

use matryoshka_core::MatryoshkaConfig;
use matryoshka_datagen::{visit_log, KeyDist, VisitSpec};
use matryoshka_engine::ClusterConfig;

use crate::figures::{fig1, fig3, fig5};
use crate::harness::{run_case, Row};
use crate::profile::{gb, Profile};

const INNER_COMPUTATIONS: u64 = 64;

/// The Fig. 4 sweeps: one sub-figure per task, x = machines.
pub fn run(profile: Profile) -> Vec<Row> {
    let machines = profile.sweep(&[5, 10, 15, 20, 25], &[5, 15, 25]);
    let strategies = ["matryoshka", "inner-parallel", "outer-parallel"];
    let mut rows = Vec::new();

    // K-means, 6 GB.
    let kmeans_case = fig1::make_case(profile, INNER_COMPUTATIONS, gb(6));
    for &m in &machines {
        for strategy in strategies {
            let meas = run_case(ClusterConfig::with_machines(m as usize), |e| {
                fig1::run_strategy(e, strategy, &kmeans_case)
            });
            rows.push(Row { figure: "fig4/kmeans".into(), series: strategy.into(), x: m, m: meas });
        }
    }

    // Per-group PageRank, 20 GB.
    let (edges, record_bytes) = fig3::pagerank_input(profile, INNER_COMPUTATIONS, gb(20));
    for &m in &machines {
        for strategy in strategies {
            let meas = run_case(ClusterConfig::with_machines(m as usize), |e| {
                fig3::run_pagerank_strategy(
                    e,
                    strategy,
                    &edges,
                    record_bytes,
                    MatryoshkaConfig::optimized(),
                    0.0,
                )
            });
            rows.push(Row {
                figure: "fig4/pagerank".into(),
                series: strategy.into(),
                x: m,
                m: meas,
            });
        }
    }

    // Average Distances, 2 GB.
    let (g_edges, g_bytes) = fig3::avg_distances_input(profile, INNER_COMPUTATIONS, gb(2));
    for &m in &machines {
        for strategy in strategies {
            let meas = run_case(ClusterConfig::with_machines(m as usize), |e| {
                fig3::run_avg_distances_strategy(e, strategy, &g_edges, g_bytes)
            });
            rows.push(Row {
                figure: "fig4/avg-distances".into(),
                series: strategy.into(),
                x: m,
                m: meas,
            });
        }
    }

    // Bounce Rate, 24 GB (half the Fig. 5 volume so outer-parallel survives
    // on the full cluster and its flat line is visible).
    let records = profile.records(1 << 19);
    let rb = gb(24) / records as f64;
    let visits = visit_log(&VisitSpec {
        visits: records,
        groups: INNER_COMPUTATIONS as u32,
        visitors_per_group: (records / INNER_COMPUTATIONS / 3).max(8),
        bounce_fraction: 0.3,
        key_dist: KeyDist::Uniform,
        seed: 42,
    });
    for &m in &machines {
        for strategy in strategies {
            let meas = run_case(ClusterConfig::with_machines(m as usize), |e| {
                fig5::run_strategy(e, strategy, &visits, rb)
            });
            rows.push(Row {
                figure: "fig4/bounce-rate".into(),
                series: strategy.into(),
                x: m,
                m: meas,
            });
        }
    }
    rows
}
