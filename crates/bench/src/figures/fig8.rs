//! Fig. 8 (paper Sec. 9.6): the optimizer ablations.
//!
//! **Left:** InnerBag-InnerScalar join strategy on per-group PageRank. Each
//! group (topic) carries a fixed-size auxiliary scalar (the topic descriptor
//! of Topic-Sensitive PageRank), so the InnerScalar's total bytes grow with
//! the number of inner computations: broadcast wins while it is small,
//! repartition wins once it is large, forced-broadcast eventually cannot fit
//! the InnerScalar on a single machine (OOM). The Auto series must track the
//! better strategy everywhere.
//!
//! **Right:** half-lifted `mapWithClosure` strategy on shared-points K-means.
//! The per-configuration centroid payload is substantial, so at many
//! configurations the InnerScalar outweighs the point set: broadcasting the
//! points wins there, broadcasting the scalar wins at few configurations,
//! and each forced strategy is badly wrong (or OOM) at one end.

use matryoshka_core::{CrossChoice, JoinChoice, MatryoshkaConfig};
use matryoshka_datagen::{initial_centroid_configs, point_cloud, KmeansSpec, Point};
use matryoshka_engine::{ClusterConfig, Engine, MB};
use matryoshka_tasks::kmeans;
use matryoshka_tasks::seq::KmeansParams;

use crate::figures::fig3;
use crate::harness::{run_case_named, Row};
use crate::profile::{gb, Profile};

/// Fixed per-group auxiliary scalar payload (topic descriptor), left panel.
const TOPIC_DESCRIPTOR_BYTES: f64 = (MB as f64) * 1.0;

/// Left panel: join-strategy ablation on PageRank at 160 GB.
pub fn run_join_ablation(profile: Profile) -> Vec<Row> {
    let sweep = profile.sweep(&[64, 256, 1024, 4096, 8192], &[64, 1024, 8192]);
    let mut rows = Vec::new();
    for &groups in &sweep {
        let (edges, record_bytes) = fig3::pagerank_input(profile, groups, gb(160));
        for (label, choice) in [
            ("auto", JoinChoice::Auto),
            ("broadcast", JoinChoice::ForceBroadcast),
            ("repartition", JoinChoice::ForceRepartition),
        ] {
            let cfg = MatryoshkaConfig { tag_join: choice, ..MatryoshkaConfig::optimized() };
            let name = format!("fig8-join-{label}-{groups}");
            let m = run_case_named(&name, ClusterConfig::paper_small_cluster(), |e| {
                fig3::run_pagerank_strategy(
                    e,
                    "matryoshka",
                    &edges,
                    record_bytes,
                    cfg,
                    TOPIC_DESCRIPTOR_BYTES,
                )
            });
            rows.push(Row {
                figure: "fig8/join-strategy-pagerank".into(),
                series: label.into(),
                x: groups,
                m,
            });
        }
    }
    rows
}

/// Modeled per-configuration centroid payload for the right panel (each
/// configuration also carries its preprocessing state).
const CONFIG_PAYLOAD_BYTES: f64 = (MB as f64) * 2.0;

fn shared_kmeans_case(profile: Profile, configs: u64) -> (Vec<Point>, Vec<(u32, Vec<Point>)>, f64) {
    let spec = KmeansSpec {
        points: profile.records(1 << 15),
        dim: 4,
        true_clusters: 8,
        k: 8,
        spread: 0.04,
        seed: 99,
    };
    let points = point_cloud(&spec);
    let config_list = initial_centroid_configs(&spec, configs as u32);
    let point_bytes = gb(2) / spec.points as f64;
    (points, config_list, point_bytes)
}

/// Right panel: half-lifted `mapWithClosure` ablation on shared-points
/// K-means.
pub fn run_half_lifted_ablation(profile: Profile) -> Vec<Row> {
    let sweep = profile.sweep(&[16, 64, 256, 1024, 4096], &[16, 256, 4096]);
    let params = KmeansParams { epsilon: 5e-3, max_iterations: 8 };
    let mut rows = Vec::new();
    for &configs in &sweep {
        let (points, config_list, point_bytes) = shared_kmeans_case(profile, configs);
        for (label, choice) in [
            ("auto", CrossChoice::Auto),
            ("broadcast-scalar", CrossChoice::ForceBroadcastScalar),
            ("broadcast-points", CrossChoice::ForceBroadcastBag),
        ] {
            let cfg = MatryoshkaConfig { cross: choice, ..MatryoshkaConfig::optimized() };
            let name = format!("fig8-half-lifted-{label}-{configs}");
            let m = run_case_named(&name, ClusterConfig::paper_small_cluster(), |e| {
                run_shared_kmeans(e, &points, &config_list, point_bytes, &params, cfg)
            });
            rows.push(Row {
                figure: "fig8/half-lifted-kmeans".into(),
                series: label.into(),
                x: configs,
                m,
            });
        }
    }
    rows
}

/// One shared-points K-means case with the given lowering config.
pub fn run_shared_kmeans(
    engine: &Engine,
    points: &[Point],
    configs: &[(u32, Vec<Point>)],
    point_bytes: f64,
    params: &KmeansParams,
    cfg: MatryoshkaConfig,
) -> matryoshka_engine::Result<()> {
    let point_bag = engine.parallelize_with_bytes(
        points.to_vec(),
        matryoshka_tasks::hdfs_partitions(engine, points.len() as f64 * point_bytes)
            .max(engine.total_cores()),
        point_bytes,
    );
    let config_bag =
        engine.parallelize(configs.to_vec(), 1).with_record_bytes(CONFIG_PAYLOAD_BYTES);
    kmeans::matryoshka(engine, &config_bag, &point_bag, params, cfg)?;
    Ok(())
}

/// Both panels.
pub fn run(profile: Profile) -> Vec<Row> {
    let mut rows = run_join_ablation(profile);
    rows.extend(run_half_lifted_ablation(profile));
    rows
}
