//! Fig. 3 (paper Sec. 9.2): weak scaling of the *iterative* tasks (K-means,
//! per-group PageRank, Average Distances). The number of inner computations
//! and the per-computation input size vary inversely, so the total input is
//! constant and a nested-parallelism-aware system should be flat.

use matryoshka_core::MatryoshkaConfig;
use matryoshka_datagen::{
    component_graph, grouped_edges, ComponentGraphSpec, GroupedGraphSpec, KeyDist,
};
use matryoshka_engine::{ClusterConfig, Engine};
use matryoshka_tasks::seq::PageRankParams;
use matryoshka_tasks::{avg_distances, pagerank};

use crate::figures::fig1;
use crate::harness::{run_case, Row};
use crate::profile::{gb, Profile};

/// Real edge count for the PageRank weak-scaling input (models 20 GB).
const FULL_EDGES: u64 = 1 << 18;
/// Total vertices of the Average Distances graph at the `Full` profile.
const FULL_AVG_VERTICES: u64 = 2048;

/// Build the grouped PageRank input for `groups` inner computations.
pub fn pagerank_input(
    profile: Profile,
    groups: u64,
    total_bytes: f64,
) -> (Vec<(u32, (u64, u64))>, f64) {
    let edges = profile.records(FULL_EDGES);
    let spec = GroupedGraphSpec {
        total_edges: edges,
        groups: groups as u32,
        // Constant total vertex count: per-group vertices shrink as groups
        // grow (~10 edges per vertex).
        vertices_per_group: ((edges / groups) / 10).max(2) as u32,
        key_dist: KeyDist::Uniform,
        seed: 7,
    };
    (grouped_edges(&spec), total_bytes / edges as f64)
}

/// Paper-calibrated PageRank parameters for the experiments.
pub fn pagerank_params() -> PageRankParams {
    PageRankParams { damping: 0.85, epsilon: 1e-3, max_iterations: 12 }
}

/// One per-group PageRank case.
pub fn run_pagerank_strategy(
    engine: &Engine,
    strategy: &str,
    edges: &[(u32, (u64, u64))],
    record_bytes: f64,
    config: MatryoshkaConfig,
    per_group_scalar_bytes: f64,
) -> matryoshka_engine::Result<()> {
    let params = pagerank_params();
    let bag = || {
        engine.parallelize_with_bytes(
            edges.to_vec(),
            engine.config().default_parallelism,
            record_bytes,
        )
    };
    match strategy {
        "matryoshka" => {
            pagerank::matryoshka(engine, &bag(), &params, config, per_group_scalar_bytes)?;
        }
        "outer-parallel" => {
            pagerank::outer_parallel(engine, &bag(), &params)?;
        }
        "inner-parallel" => {
            let groups = pagerank::split_by_group(edges);
            pagerank::inner_parallel(engine, &groups, &params, record_bytes)?;
        }
        other => panic!("unknown strategy {other}"),
    }
    Ok(())
}

/// One Average Distances case (`components` inner computations at level 1).
pub fn run_avg_distances_strategy(
    engine: &Engine,
    strategy: &str,
    edges: &[(u64, u64)],
    record_bytes: f64,
) -> matryoshka_engine::Result<()> {
    let bag = || {
        engine.parallelize_with_bytes(
            edges.to_vec(),
            engine.config().default_parallelism,
            record_bytes,
        )
    };
    match strategy {
        "matryoshka" => {
            avg_distances::matryoshka(engine, &bag(), MatryoshkaConfig::optimized(), 64)?;
        }
        "outer-parallel" => {
            avg_distances::outer_parallel(engine, &bag())?;
        }
        "inner-parallel" => {
            let comps = avg_distances::split_by_component(edges);
            avg_distances::inner_parallel(engine, &comps, record_bytes)?;
        }
        other => panic!("unknown strategy {other}"),
    }
    Ok(())
}

/// Build the Average Distances input for `components` components with a
/// constant total vertex count.
pub fn avg_distances_input(
    profile: Profile,
    components: u64,
    total_bytes: f64,
) -> (Vec<(u64, u64)>, f64) {
    let total_vertices = match profile {
        Profile::Full => FULL_AVG_VERTICES,
        Profile::Quick => FULL_AVG_VERTICES / 4,
    };
    let spec = ComponentGraphSpec {
        components: components as u32,
        vertices_per_component: ((total_vertices / components) as u32).max(3),
        extra_edges_per_component: ((total_vertices / components) as u32 / 2).max(1),
        seed: 13,
    };
    let edges = component_graph(&spec);
    let record_bytes = total_bytes / edges.len() as f64;
    (edges, record_bytes)
}

/// The Fig. 3 sweeps, one sub-figure per task.
pub fn run(profile: Profile) -> Vec<Row> {
    let mut rows = Vec::new();
    let strategies = ["matryoshka", "inner-parallel", "outer-parallel"];

    // K-means (grouped samples), 6 GB total, like Fig. 1 but with the
    // Matryoshka line front and center.
    for &configs in &profile.sweep(&[4, 16, 64, 256, 1024], &[4, 64, 1024]) {
        let case = fig1::make_case(profile, configs, gb(6));
        for strategy in strategies {
            let m = run_case(ClusterConfig::paper_small_cluster(), |e| {
                fig1::run_strategy(e, strategy, &case)
            });
            rows.push(Row { figure: "fig3/kmeans".into(), series: strategy.into(), x: configs, m });
        }
    }

    // Per-group PageRank, 20 GB total.
    for &groups in &profile.sweep(&[4, 16, 64, 256, 1024], &[4, 64, 1024]) {
        let (edges, record_bytes) = pagerank_input(profile, groups, gb(20));
        for strategy in strategies {
            let m = run_case(ClusterConfig::paper_small_cluster(), |e| {
                run_pagerank_strategy(
                    e,
                    strategy,
                    &edges,
                    record_bytes,
                    MatryoshkaConfig::optimized(),
                    0.0,
                )
            });
            rows.push(Row {
                figure: "fig3/pagerank".into(),
                series: strategy.into(),
                x: groups,
                m,
            });
        }
    }

    // Average Distances (three levels), 2 GB total (the all-pairs-BFS inner
    // computation is compute-bound: graphs are small, records heavy).
    for &comps in &profile.sweep(&[4, 16, 64, 256], &[4, 64]) {
        let (edges, record_bytes) = avg_distances_input(profile, comps, gb(2));
        for strategy in strategies {
            let m = run_case(ClusterConfig::paper_small_cluster(), |e| {
                run_avg_distances_strategy(e, strategy, &edges, record_bytes)
            });
            rows.push(Row {
                figure: "fig3/avg-distances".into(),
                series: strategy.into(),
                x: comps,
                m,
            });
        }
    }
    rows
}
