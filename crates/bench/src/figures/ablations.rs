//! Additional ablations of design choices called out in DESIGN.md, beyond
//! the paper's Fig. 8:
//!
//! - **Partition tuning (Sec. 8.1):** size-derived partition counts for
//!   InnerScalar-sized bags vs. always using the engine's default
//!   parallelism.
//! - **Memoized lineage:** how much of an iterative task's simulated time is
//!   saved by evaluating each operator once (the engine's always-cached
//!   lineage) — measured indirectly by comparing a co-partitioned static
//!   relation (reused placement) against re-shuffling it every iteration.
//! - **Adaptive re-optimizations** (`docs/ADAPTIVE.md`): each of the three
//!   feedback-driven mechanisms (partition coalescing, join switching, skew
//!   salting) enabled alone on the Fig. 7 skewed PageRank, against the fully
//!   static plan and the fully adaptive one.

use matryoshka_core::{AdaptiveConfig, MatryoshkaConfig};
use matryoshka_datagen::KeyDist;
use matryoshka_engine::ClusterConfig;

use crate::figures::{fig3, fig7};
use crate::harness::{run_case, Row};
use crate::profile::{gb, Profile};

/// Partition-tuning ablation on per-group PageRank at three group counts.
pub fn run_partition_tuning(profile: Profile) -> Vec<Row> {
    let mut rows = Vec::new();
    for &groups in &profile.sweep(&[4, 64, 1024], &[4, 1024]) {
        let (edges, record_bytes) = fig3::pagerank_input(profile, groups, gb(20));
        for (label, tuning) in [("sized-partitions", true), ("default-parallelism", false)] {
            let cfg =
                MatryoshkaConfig { partition_tuning: tuning, ..MatryoshkaConfig::optimized() };
            let m = run_case(ClusterConfig::paper_small_cluster(), |e| {
                fig3::run_pagerank_strategy(e, "matryoshka", &edges, record_bytes, cfg, 0.0)
            });
            rows.push(Row {
                figure: "ablation/partition-tuning-pagerank".into(),
                series: label.into(),
                x: groups,
                m,
            });
        }
    }
    rows
}

/// One row per adaptive re-optimization on the Fig. 7 skewed PageRank
/// (Zipf exponent 1.5, fat per-group scalars): the fully static plan, each
/// mechanism alone, and everything on. The deltas attribute the adaptive
/// win: coalescing trims the task count, join switching repartitions the
/// over-cap scalars instead of broadcasting them, and salting declines (a
/// logged `keep`) when replicating the scalar side would outweigh the hot
/// partition.
pub fn run_adaptive(profile: Profile) -> Vec<Row> {
    let only = |coalesce: bool, switch_joins: bool, salt_skew: bool| AdaptiveConfig {
        coalesce,
        switch_joins,
        salt_skew,
        ..AdaptiveConfig::enabled()
    };
    let variants: [(&str, AdaptiveConfig); 5] = [
        ("static", AdaptiveConfig::default()),
        ("coalesce-only", only(true, false, false)),
        ("switch-joins-only", only(false, true, false)),
        ("salt-only", only(false, false, true)),
        ("all-adaptive", only(true, true, true)),
    ];
    let (edges, record_bytes) = fig7::sweep_edges(profile, KeyDist::Zipf(1.5));
    let mut rows = Vec::new();
    for (label, adaptive) in variants {
        let cfg = MatryoshkaConfig { adaptive, ..MatryoshkaConfig::optimized() };
        let m = run_case(ClusterConfig::paper_small_cluster(), |e| {
            fig3::run_pagerank_strategy(
                e,
                "matryoshka",
                &edges,
                record_bytes,
                cfg.clone(),
                fig7::SWEEP_SCALAR_BYTES,
            )
        });
        rows.push(Row {
            figure: "ablation/adaptive-pagerank-zipf".into(),
            series: label.into(),
            x: 150,
            m,
        });
    }
    rows
}

/// All ablations.
pub fn run(profile: Profile) -> Vec<Row> {
    let mut rows = run_partition_tuning(profile);
    rows.extend(run_adaptive(profile));
    rows
}
