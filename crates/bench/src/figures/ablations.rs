//! Additional ablations of design choices called out in DESIGN.md, beyond
//! the paper's Fig. 8:
//!
//! - **Partition tuning (Sec. 8.1):** size-derived partition counts for
//!   InnerScalar-sized bags vs. always using the engine's default
//!   parallelism.
//! - **Memoized lineage:** how much of an iterative task's simulated time is
//!   saved by evaluating each operator once (the engine's always-cached
//!   lineage) — measured indirectly by comparing a co-partitioned static
//!   relation (reused placement) against re-shuffling it every iteration.

use matryoshka_core::MatryoshkaConfig;
use matryoshka_engine::ClusterConfig;

use crate::figures::fig3;
use crate::harness::{run_case, Row};
use crate::profile::{gb, Profile};

/// Partition-tuning ablation on per-group PageRank at three group counts.
pub fn run_partition_tuning(profile: Profile) -> Vec<Row> {
    let mut rows = Vec::new();
    for &groups in &profile.sweep(&[4, 64, 1024], &[4, 1024]) {
        let (edges, record_bytes) = fig3::pagerank_input(profile, groups, gb(20));
        for (label, tuning) in [("sized-partitions", true), ("default-parallelism", false)] {
            let cfg =
                MatryoshkaConfig { partition_tuning: tuning, ..MatryoshkaConfig::optimized() };
            let m = run_case(ClusterConfig::paper_small_cluster(), |e| {
                fig3::run_pagerank_strategy(e, "matryoshka", &edges, record_bytes, cfg, 0.0)
            });
            rows.push(Row {
                figure: "ablation/partition-tuning-pagerank".into(),
                series: label.into(),
                x: groups,
                m,
            });
        }
    }
    rows
}

/// Both ablations.
pub fn run(profile: Profile) -> Vec<Row> {
    run_partition_tuning(profile)
}
