//! Multi-tenant service sweep (methodology in EXPERIMENTS.md): scheduling
//! policy × offered load on the virtual-time job service, emitted as
//! `BENCH_service.json` by `cargo run --release --bin service_sweep`.
//!
//! A burst of jobs is submitted into two pools (`batch` weight 1,
//! `interactive` weight 3) with virtual inter-arrival gaps swept from 0
//! (everything at once) upward. Each cell measures the virtual makespan
//! and the service counters: completed/cancelled/rejected jobs and total
//! queue wait. The admission queue is sized below the burst, so every cell
//! also exercises backpressure (`jobs_rejected > 0`); the gap-0 column
//! saturates the slots and separates FIFO from weighted fair share in
//! per-pool queue waits. All of it is deterministic — virtual time, seeded
//! job costs — so rows are bit-stable across machines.

use matryoshka_core::scheduler::{PoolConfig, SchedulerConfig, SchedulingPolicy};
use matryoshka_core::MatryoshkaConfig;
use matryoshka_engine::sim::SimTime;
use matryoshka_engine::ClusterConfig;
use matryoshka_service::{JobService, JobSpec};

use crate::harness::{Measurement, Outcome, Row};
use crate::profile::Profile;

/// Jobs offered per cell — deliberately above `QUEUE_CAPACITY` so admission
/// control visibly rejects the burst tail.
const OFFERED_JOBS: u64 = 32;

/// Admission queue bound (jobs beyond this are rejected at submit).
const QUEUE_CAPACITY: usize = 24;

/// Simulated core slots multiplexed across jobs.
const TOTAL_SLOTS: usize = 4;

/// Base record count of a job's generated input (profile-scaled).
const BASE_RECORDS: u64 = 4_096;

/// Dataset/cost seed (fixed: the artifact must be reproducible).
const SEED: u64 = 42;

/// SplitMix64 finalizer for per-job cost variation.
fn mix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

fn service(policy: SchedulingPolicy) -> JobService {
    let config = MatryoshkaConfig {
        scheduler: SchedulerConfig {
            policy,
            pools: vec![PoolConfig::new("batch", 1), PoolConfig::new("interactive", 3)],
            queue_capacity: QUEUE_CAPACITY,
            total_slots: TOTAL_SLOTS,
            default_slots: 1,
        },
        ..MatryoshkaConfig::optimized()
    };
    JobService::new(ClusterConfig::local_test(), config, SEED)
        .expect("sweep scheduler config is valid")
}

/// One cell: `OFFERED_JOBS` seeded-cost jobs arriving `gap_ms` of virtual
/// time apart, alternating between the two pools, run to completion.
fn run_cell(policy: SchedulingPolicy, gap_ms: u64, base_records: u64) -> Measurement {
    let svc = service(policy);
    for i in 0..OFFERED_JOBS {
        let pool = if i % 2 == 0 { "batch" } else { "interactive" };
        let records = base_records / 2 + mix(SEED ^ i) % base_records;
        let spec = JobSpec::native(format!("job-{i}"), move |e| {
            let n = e.generate(records, 8, |r| (r % 97, r)).reduce_by_key(|a, b| a + b).count()?;
            Ok(format!("{n} groups"))
        })
        .in_pool(pool);
        // Burst-tail submissions bounce off the full queue: that is the
        // admission-control column of the artifact, not an error.
        let _ = svc.submit_at(spec, SimTime::from_millis(i * gap_ms));
    }
    svc.run_until_idle();
    Measurement {
        outcome: Outcome::Ok,
        seconds: svc.virtual_time().as_nanos() as f64 / 1e9,
        stats: svc.stats(),
    }
}

fn series_name(policy: SchedulingPolicy) -> &'static str {
    match policy {
        SchedulingPolicy::Fifo => "fifo",
        SchedulingPolicy::FairShare => "fair-1:3",
    }
}

fn sweep(gaps_ms: &[u64], base_records: u64) -> Vec<Row> {
    let mut rows = Vec::new();
    for policy in [SchedulingPolicy::Fifo, SchedulingPolicy::FairShare] {
        for &gap_ms in gaps_ms {
            rows.push(Row {
                figure: "service/offered-load".into(),
                series: series_name(policy).into(),
                x: gap_ms,
                m: run_cell(policy, gap_ms, base_records),
            });
        }
    }
    rows
}

/// The full sweep (x = virtual inter-arrival gap in milliseconds).
pub fn run(profile: Profile) -> Vec<Row> {
    sweep(&profile.sweep(&[0, 20, 100], &[0, 20]), profile.records(BASE_RECORDS))
}

/// The reduced CI gate: the saturating and a draining point.
pub fn smoke(profile: Profile) -> Vec<Row> {
    sweep(&[0, 20], profile.records(BASE_RECORDS).min(1_024))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::{rows_to_json, validate_service_rows};

    #[test]
    fn smoke_rows_validate_and_are_deterministic() {
        let rows = smoke(Profile::Quick);
        let json = rows_to_json(&rows);
        validate_service_rows(&json).expect("smoke rows satisfy the artifact contract");
        let again = rows_to_json(&smoke(Profile::Quick));
        assert_eq!(json, again, "the sweep is a pure function of its config");
    }
}
