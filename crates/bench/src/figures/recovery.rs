//! Recovery-overhead sweep (`docs/FAULTS.md`; methodology in
//! EXPERIMENTS.md): machine-loss rate × checkpoint interval on an iterative
//! lifted loop, emitted as `BENCH_recovery.json` by `cargo run --release
//! --bin recovery_sweep`.
//!
//! The workload is the lifted control-flow machinery itself: many per-tag
//! countdown loops run as one lifted do-while
//! ([`matryoshka_core::lifted_while`]), whose tag joins shuffle fat per-tag
//! state every iteration. Without checkpoints, each simulated machine loss
//! replays lineage all the way back to the sources, so recovery cost grows
//! with loop depth; checkpointing every K iterations
//! ([`MatryoshkaConfig::checkpoint_interval`]) truncates the replay at the
//! price of a modeled checkpoint write — the same snapshot-interval
//! trade-off Labyrinth (Gévay et al.) makes for iterative dataflows.

use matryoshka_core::{lifted_while, InnerScalar, LiftingContext, MatryoshkaConfig};
use matryoshka_engine::ClusterConfig;

use crate::harness::{run_case, Row};
use crate::profile::Profile;

/// Machine-loss rates swept, in per-mille (series `loss-<permille>`).
const LOSS_PERMILLE: &[u64] = &[0, 10, 30];

/// Lifted loop iterations: deep enough that un-checkpointed lineage replay
/// visibly dominates at the higher loss rate.
const ITERATIONS: i64 = 12;

/// Modeled bytes of each per-tag loop state record: fat enough that
/// checkpoint writes cost real simulated time (the trade-off has two sides).
const STATE_BYTES: f64 = (256 * 1024) as f64;

/// Tags (concurrent per-tag loops). Enough that Sec. 8.1 partition tuning
/// spreads the per-tag state over multiple partitions and the Auto join
/// picks repartition over broadcast — the lifted loop then crosses a real
/// shuffle boundary every iteration, which is where machines get lost.
const TAGS: u64 = 65_536;

/// The simulated cluster for one sweep point.
fn cluster(loss_permille: u64) -> ClusterConfig {
    let mut cfg = ClusterConfig::paper_small_cluster();
    cfg.faults.machine_loss_rate = loss_permille as f64 / 1000.0;
    cfg.faults.seed = 42;
    // The sweep measures recovery cost, not recovery failure: give the
    // pathological tail (several consecutive losses of one machine) room so
    // every point completes and the artifact stays comparable.
    cfg.faults.max_recovery_attempts = 5;
    cfg
}

/// One case: per-tag countdown loops lifted into a single dataflow, with
/// the loop state checkpointed every `interval` iterations (0 = never).
fn run_lifted_loop(
    e: &matryoshka_engine::Engine,
    tags: u64,
    interval: u64,
) -> matryoshka_engine::Result<()> {
    let mut cfg = MatryoshkaConfig::optimized();
    cfg.checkpoint_interval = interval as usize;
    let tag_bag = e.generate(tags, 16, |t| t);
    let ctx = LiftingContext::new(e.clone(), tag_bag, tags, cfg);
    let init = InnerScalar::from_repr(
        e.generate(tags, 16, |t| (t, ITERATIONS)).with_record_bytes(STATE_BYTES),
        ctx,
    );
    let out = lifted_while(
        &init,
        |s: &InnerScalar<u64, i64>| {
            let next = s.map(|x| x - 1);
            let cond = next.map(|x| *x > 0);
            Ok((next, cond))
        },
        None,
    )?;
    let n = out.repr().count()?;
    assert_eq!(n, tags, "every tag's loop must finish exactly once");
    Ok(())
}

/// The full sweep: for each loss rate, simulated runtime across checkpoint
/// intervals (x = interval, 0 = never checkpoint).
pub fn run(profile: Profile) -> Vec<Row> {
    let tags = profile.records(TAGS);
    let mut rows = Vec::new();
    for &permille in LOSS_PERMILLE {
        for &interval in &profile.sweep(&[0, 1, 2, 4, 8], &[0, 1, 4]) {
            let m = run_case(cluster(permille), |e| run_lifted_loop(e, tags, interval));
            rows.push(Row {
                figure: "recovery/loss-x-checkpoint".into(),
                series: format!("loss-{permille}"),
                x: interval,
                m,
            });
        }
    }
    rows
}

/// Fast CI gate: one lossy rate, checkpointing off vs. on.
pub fn smoke(profile: Profile) -> Vec<Row> {
    let tags = profile.records(TAGS);
    let mut rows = Vec::new();
    for (permille, interval) in [(0u64, 0u64), (30, 0), (30, 2)] {
        let m = run_case(cluster(permille), |e| run_lifted_loop(e, tags, interval));
        rows.push(Row {
            figure: "recovery/smoke".into(),
            series: format!("loss-{permille}"),
            x: interval,
            m,
        });
    }
    rows
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::harness::Outcome;

    #[test]
    fn smoke_sweep_shows_losses_and_checkpoints() {
        let rows = smoke(Profile::Quick);
        assert_eq!(rows.len(), 3);
        assert!(rows.iter().all(|r| r.m.outcome == Outcome::Ok));
        let baseline = &rows[0];
        let lossy = &rows[1];
        let checkpointed = &rows[2];
        assert_eq!(baseline.m.stats.partitions_lost, 0);
        assert_eq!(lossy.m.stats.checkpoint_bytes, 0, "interval 0 writes nothing");
        assert!(lossy.m.stats.partitions_lost > 0, "loss-30 must lose partitions");
        assert!(lossy.m.seconds > baseline.m.seconds, "recovery must cost simulated time");
        assert!(checkpointed.m.stats.checkpoint_bytes > 0, "interval 2 must write checkpoints");
        assert!(
            checkpointed.m.stats.recompute_nanos < lossy.m.stats.recompute_nanos,
            "checkpointing must shrink lineage replay: {} vs {}",
            checkpointed.m.stats.recompute_nanos,
            lossy.m.stats.recompute_nanos
        );
    }
}
