//! Fig. 1 (paper Sec. 1): the K-means motivation experiment. The number of
//! initial configurations varies while the per-configuration sample size
//! varies inversely, so total work is constant and the ideal runtime is the
//! single-configuration run. Inner-parallel wins at few configurations,
//! outer-parallel at many; both sit far from ideal in between — the gray-gap
//! argument for Matryoshka (whose line we add for reference).

use matryoshka_core::MatryoshkaConfig;
use matryoshka_datagen::{initial_centroid_configs, point_cloud, KmeansSpec, Point};
use matryoshka_engine::{ClusterConfig, Engine};
use matryoshka_tasks::kmeans;
use matryoshka_tasks::seq::KmeansParams;

use crate::harness::{run_case, Row};
use crate::profile::{gb, Profile};

/// Real point count at the `Full` profile (modeled volume stays 6 GB).
const FULL_POINTS: u64 = 1 << 17;

/// Deterministic K-means input shared by all strategies of one sweep point.
pub struct KmeansCase {
    /// Per-config samples as flat `(config, point)` records.
    pub samples: Vec<(u32, Point)>,
    /// The initial centroid configurations.
    pub configs: Vec<(u32, Vec<Point>)>,
    /// Modeled bytes per point record.
    pub record_bytes: f64,
    /// Algorithm parameters.
    pub params: KmeansParams,
}

/// Build the case for `n_configs` configurations.
pub fn make_case(profile: Profile, n_configs: u64, total_bytes: f64) -> KmeansCase {
    let points = profile.records(FULL_POINTS);
    let spec = KmeansSpec { points, dim: 4, true_clusters: 8, k: 8, spread: 0.04, seed: 77 };
    let cloud = point_cloud(&spec);
    let configs = initial_centroid_configs(&spec, n_configs as u32);
    let samples: Vec<(u32, Point)> =
        cloud.into_iter().enumerate().map(|(i, p)| ((i as u64 % n_configs) as u32, p)).collect();
    KmeansCase {
        samples,
        configs,
        record_bytes: total_bytes / points as f64,
        params: KmeansParams { epsilon: 5e-3, max_iterations: 10 },
    }
}

/// Run one strategy of the grouped K-means task.
pub fn run_strategy(
    engine: &Engine,
    strategy: &str,
    case: &KmeansCase,
) -> matryoshka_engine::Result<()> {
    let parallelism = engine.config().default_parallelism;
    let sample_bag =
        || engine.parallelize_with_bytes(case.samples.clone(), parallelism, case.record_bytes);
    match strategy {
        "matryoshka" => {
            let config_bag = engine.parallelize(case.configs.clone(), 1);
            kmeans::matryoshka_grouped(
                engine,
                &config_bag,
                &sample_bag(),
                &case.params,
                MatryoshkaConfig::optimized(),
            )?;
        }
        "outer-parallel" => {
            kmeans::outer_parallel_grouped(engine, &case.configs, &sample_bag(), &case.params)?;
        }
        "inner-parallel" => {
            let split = kmeans::split_samples(&case.samples);
            kmeans::inner_parallel_grouped(
                engine,
                &case.configs,
                &split,
                &case.params,
                case.record_bytes,
            )?;
        }
        "ideal" => {
            // The paper's ideal: one configuration over the full input
            // (reading from block-partitioned files, like every strategy).
            let pts: Vec<Point> = case.samples.iter().map(|(_, p)| p.clone()).collect();
            let p = matryoshka_tasks::hdfs_partitions(engine, pts.len() as f64 * case.record_bytes);
            let bag = engine.parallelize_with_bytes(pts, p, case.record_bytes);
            matryoshka_tasks::flat::kmeans(engine, &bag, &case.configs[0].1, &case.params)?;
        }
        other => panic!("unknown strategy {other}"),
    }
    Ok(())
}

/// The Fig. 1 sweep.
pub fn run(profile: Profile) -> Vec<Row> {
    let sweep = profile.sweep(&[1, 4, 16, 64, 256, 1024], &[1, 16, 256]);
    let mut rows = Vec::new();
    for &n_configs in &sweep {
        let case = make_case(profile, n_configs, gb(6));
        for strategy in ["ideal", "inner-parallel", "outer-parallel", "matryoshka"] {
            let m = run_case(ClusterConfig::paper_small_cluster(), |e| {
                run_strategy(e, strategy, &case)
            });
            rows.push(Row {
                figure: "fig1/kmeans-motivation".to_string(),
                series: strategy.to_string(),
                x: n_configs,
                m,
            });
        }
    }
    rows
}
