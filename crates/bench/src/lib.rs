//! # matryoshka-bench
//!
//! Experiment harnesses reproducing every figure of the paper's evaluation
//! (Sec. 9) on the simulated cluster, plus Criterion microbenchmarks of the
//! engine's real (wall-clock) performance.
//!
//! Each figure module builds the paper's workload at a modeled data volume,
//! runs every strategy the figure compares on a fresh simulated cluster, and
//! reports simulated seconds (or OOM / n-a, exactly where the paper reports
//! failures). Run all figures with `cargo bench -p matryoshka-bench` or a
//! single one with its binary, e.g. `cargo run --release --bin fig5_bounce_rate`.

#![warn(missing_docs)]

pub mod figures;
pub mod harness;
pub mod json;
pub mod profile;

pub use harness::{print_csv, print_rows, run_case, Measurement, Outcome, Row};
pub use json::{
    rows_to_json, validate_bench_rows, validate_micro_rows, validate_recovery_rows,
    validate_service_rows,
};
pub use profile::Profile;
