//! Machine-readable benchmark records: serialize figure [`Row`]s to a JSON
//! array (the `BENCH_skew.json` artifact) and parse/validate such files
//! without any external dependency. The parser is a minimal but complete
//! recursive-descent JSON reader — enough to round-trip what [`rows_to_json`]
//! emits and to reject truncated or hand-mangled files in CI.

use std::collections::BTreeMap;

use crate::harness::{Outcome, Row};

/// Serialize rows as a JSON array, one object per line, with the same fields
/// as [`crate::harness::print_csv`].
pub fn rows_to_json(rows: &[Row]) -> String {
    let mut out = String::from("[\n");
    for (i, r) in rows.iter().enumerate() {
        let outcome = match r.m.outcome {
            Outcome::Ok => "ok",
            Outcome::Oom => "oom",
            Outcome::Unsupported => "unsupported",
        };
        out.push_str(&format!(
            "  {{\"figure\": {}, \"series\": {}, \"x\": {}, \"outcome\": \"{outcome}\", \
             \"seconds\": {:.3}, \"jobs\": {}, \"shuffle_bytes\": {}, \"spill_bytes\": {}, \
             \"partitions_lost\": {}, \"recompute_ms\": {:.3}, \"checkpoint_bytes\": {}, \
             \"jobs_completed\": {}, \"jobs_cancelled\": {}, \"jobs_rejected\": {}, \
             \"queue_wait_ms\": {:.3}}}{}\n",
            quote(&r.figure),
            quote(&r.series),
            r.x,
            r.m.seconds,
            r.m.stats.jobs,
            r.m.stats.shuffle_bytes,
            r.m.stats.spill_bytes,
            r.m.stats.partitions_lost,
            r.m.stats.recompute_nanos as f64 / 1e6,
            r.m.stats.checkpoint_bytes,
            r.m.stats.jobs_completed,
            r.m.stats.jobs_cancelled,
            r.m.stats.jobs_rejected,
            r.m.stats.queue_wait_nanos as f64 / 1e6,
            if i + 1 == rows.len() { "" } else { "," },
        ));
    }
    out.push_str("]\n");
    out
}

fn quote(s: &str) -> String {
    let mut q = String::from("\"");
    for c in s.chars() {
        match c {
            '"' => q.push_str("\\\""),
            '\\' => q.push_str("\\\\"),
            c if (c as u32) < 0x20 => q.push_str(&format!("\\u{:04x}", c as u32)),
            c => q.push(c),
        }
    }
    q.push('"');
    q
}

/// A parsed JSON value (only what benchmark records need).
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number, kept as f64.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object (key order normalized).
    Obj(BTreeMap<String, Json>),
}

impl Json {
    /// The value at `key` if this is an object that has it.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(m) => m.get(key),
            _ => None,
        }
    }

    /// The string contents if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric value if this is a number.
    pub fn as_num(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }
}

/// Parse a complete JSON document. Errors carry the byte offset.
pub fn parse(src: &str) -> Result<Json, String> {
    let b = src.as_bytes();
    let mut p = Parser { b, at: 0 };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.at != b.len() {
        return Err(format!("trailing garbage at byte {}", p.at));
    }
    Ok(v)
}

struct Parser<'a> {
    b: &'a [u8],
    at: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while self.at < self.b.len() && self.b[self.at].is_ascii_whitespace() {
            self.at += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.b.get(self.at).copied()
    }

    fn expect(&mut self, c: u8) -> Result<(), String> {
        if self.peek() == Some(c) {
            self.at += 1;
            Ok(())
        } else {
            Err(format!("expected {:?} at byte {}", c as char, self.at))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            other => Err(format!("unexpected {:?} at byte {}", other.map(|c| c as char), self.at)),
        }
    }

    fn literal(&mut self, word: &str, v: Json) -> Result<Json, String> {
        if self.b[self.at..].starts_with(word.as_bytes()) {
            self.at += word.len();
            Ok(v)
        } else {
            Err(format!("bad literal at byte {}", self.at))
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.at;
        if self.peek() == Some(b'-') {
            self.at += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit() || matches!(c, b'.' | b'e' | b'E' | b'+' | b'-'))
        {
            self.at += 1;
        }
        std::str::from_utf8(&self.b[start..self.at])
            .ok()
            .and_then(|s| s.parse::<f64>().ok())
            .map(Json::Num)
            .ok_or_else(|| format!("bad number at byte {start}"))
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut s = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    self.at += 1;
                    return Ok(s);
                }
                Some(b'\\') => {
                    self.at += 1;
                    match self.peek() {
                        Some(b'"') => s.push('"'),
                        Some(b'\\') => s.push('\\'),
                        Some(b'/') => s.push('/'),
                        Some(b'n') => s.push('\n'),
                        Some(b't') => s.push('\t'),
                        Some(b'r') => s.push('\r'),
                        Some(b'u') => {
                            let hex = self
                                .b
                                .get(self.at + 1..self.at + 5)
                                .ok_or("truncated \\u escape")?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex).map_err(|_| "bad \\u escape")?,
                                16,
                            )
                            .map_err(|e| e.to_string())?;
                            s.push(char::from_u32(code).ok_or("bad \\u code point")?);
                            self.at += 4;
                        }
                        other => return Err(format!("bad escape {other:?}")),
                    }
                    self.at += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (the input is a &str, so byte
                    // boundaries are valid).
                    let rest = &self.b[self.at..];
                    let ch_len = std::str::from_utf8(rest)
                        .map_err(|_| "invalid utf-8")?
                        .chars()
                        .next()
                        .map(char::len_utf8)
                        .unwrap_or(1);
                    s.push_str(std::str::from_utf8(&rest[..ch_len]).unwrap());
                    self.at += ch_len;
                }
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.at += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.at += 1,
                Some(b']') => {
                    self.at += 1;
                    return Ok(Json::Arr(items));
                }
                other => return Err(format!("expected , or ] got {other:?} at byte {}", self.at)),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.at += 1;
            return Ok(Json::Obj(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            map.insert(key, val);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.at += 1,
                Some(b'}') => {
                    self.at += 1;
                    return Ok(Json::Obj(map));
                }
                other => return Err(format!("expected , or }} got {other:?} at byte {}", self.at)),
            }
        }
    }
}

/// Validate a `BENCH_skew.json` document: a non-empty array of row objects
/// each carrying `figure`/`series` strings and a numeric `seconds`, with
/// both the static and the adaptive Matryoshka series present. Returns the
/// row count.
pub fn validate_bench_rows(src: &str) -> Result<usize, String> {
    let doc = parse(src)?;
    let rows = match &doc {
        Json::Arr(rows) if !rows.is_empty() => rows,
        Json::Arr(_) => return Err("empty benchmark array".into()),
        _ => return Err("top level is not a JSON array".into()),
    };
    let mut has_static = false;
    let mut has_adaptive = false;
    for (i, row) in rows.iter().enumerate() {
        let series = row
            .get("series")
            .and_then(Json::as_str)
            .ok_or_else(|| format!("row {i}: missing string \"series\""))?;
        row.get("figure")
            .and_then(Json::as_str)
            .ok_or_else(|| format!("row {i}: missing string \"figure\""))?;
        let secs = row
            .get("seconds")
            .and_then(Json::as_num)
            .ok_or_else(|| format!("row {i}: missing numeric \"seconds\""))?;
        if !secs.is_finite() || secs < 0.0 {
            return Err(format!("row {i}: bad seconds {secs}"));
        }
        has_static |= series == "matryoshka";
        has_adaptive |= series == "matryoshka-adaptive";
    }
    if !has_static || !has_adaptive {
        return Err("missing matryoshka and/or matryoshka-adaptive series".into());
    }
    Ok(rows.len())
}

/// Validate a `BENCH_recovery.json` document (see `figures::recovery`): a
/// non-empty array of row objects with `figure`/`series` strings, a numeric
/// `seconds`, and numeric `partitions_lost`/`recompute_ms`/`checkpoint_bytes`
/// recovery counters — including the fault-free `loss-0` baseline series, at
/// least one lossy series, and at least one row that actually lost
/// partitions (otherwise the sweep measured nothing). Returns the row count.
pub fn validate_recovery_rows(src: &str) -> Result<usize, String> {
    let doc = parse(src)?;
    let rows = match &doc {
        Json::Arr(rows) if !rows.is_empty() => rows,
        Json::Arr(_) => return Err("empty benchmark array".into()),
        _ => return Err("top level is not a JSON array".into()),
    };
    let mut has_baseline = false;
    let mut has_lossy = false;
    let mut any_lost = false;
    for (i, row) in rows.iter().enumerate() {
        let series = row
            .get("series")
            .and_then(Json::as_str)
            .ok_or_else(|| format!("row {i}: missing string \"series\""))?;
        row.get("figure")
            .and_then(Json::as_str)
            .ok_or_else(|| format!("row {i}: missing string \"figure\""))?;
        let secs = row
            .get("seconds")
            .and_then(Json::as_num)
            .ok_or_else(|| format!("row {i}: missing numeric \"seconds\""))?;
        if !secs.is_finite() || secs < 0.0 {
            return Err(format!("row {i}: bad seconds {secs}"));
        }
        for key in ["partitions_lost", "recompute_ms", "checkpoint_bytes"] {
            row.get(key)
                .and_then(Json::as_num)
                .ok_or_else(|| format!("row {i}: missing numeric \"{key}\""))?;
        }
        let lost = row.get("partitions_lost").and_then(Json::as_num).unwrap_or(0.0);
        if series == "loss-0" {
            has_baseline = true;
            if lost > 0.0 {
                return Err(format!("row {i}: loss-0 baseline lost {lost} partitions"));
            }
        } else if series.starts_with("loss-") {
            has_lossy = true;
            any_lost |= lost > 0.0;
        }
    }
    if !has_baseline {
        return Err("missing the loss-0 baseline series".into());
    }
    if !has_lossy {
        return Err("missing a lossy series (loss-<permille> with permille > 0)".into());
    }
    if !any_lost {
        return Err("no row lost any partitions; the sweep measured nothing".into());
    }
    Ok(rows.len())
}

/// Validate a `BENCH_service.json` document (see `figures::service`): a
/// non-empty array of row objects with `figure`/`series` strings, a numeric
/// virtual-makespan `seconds`, and the multi-tenancy counters
/// `jobs_completed`/`jobs_cancelled`/`jobs_rejected`/`queue_wait_ms` — with
/// both scheduling policies present (`fifo` and a `fair-*` series), at least
/// one row that completed jobs, one that queued (non-zero wait), and one
/// where admission control rejected work. Returns the row count.
pub fn validate_service_rows(src: &str) -> Result<usize, String> {
    let doc = parse(src)?;
    let rows = match &doc {
        Json::Arr(rows) if !rows.is_empty() => rows,
        Json::Arr(_) => return Err("empty benchmark array".into()),
        _ => return Err("top level is not a JSON array".into()),
    };
    let mut has_fifo = false;
    let mut has_fair = false;
    let mut any_completed = false;
    let mut any_waited = false;
    let mut any_rejected = false;
    for (i, row) in rows.iter().enumerate() {
        let series = row
            .get("series")
            .and_then(Json::as_str)
            .ok_or_else(|| format!("row {i}: missing string \"series\""))?;
        row.get("figure")
            .and_then(Json::as_str)
            .ok_or_else(|| format!("row {i}: missing string \"figure\""))?;
        let secs = row
            .get("seconds")
            .and_then(Json::as_num)
            .ok_or_else(|| format!("row {i}: missing numeric \"seconds\""))?;
        if !secs.is_finite() || secs < 0.0 {
            return Err(format!("row {i}: bad seconds {secs}"));
        }
        let counter = |key: &str| -> Result<f64, String> {
            row.get(key)
                .and_then(Json::as_num)
                .ok_or_else(|| format!("row {i}: missing numeric \"{key}\""))
        };
        let completed = counter("jobs_completed")?;
        let cancelled = counter("jobs_cancelled")?;
        let rejected = counter("jobs_rejected")?;
        let wait_ms = counter("queue_wait_ms")?;
        if completed + cancelled == 0.0 {
            return Err(format!("row {i}: no job ran (completed + cancelled == 0)"));
        }
        has_fifo |= series == "fifo";
        has_fair |= series.starts_with("fair");
        any_completed |= completed > 0.0;
        any_waited |= wait_ms > 0.0;
        any_rejected |= rejected > 0.0;
    }
    if !has_fifo || !has_fair {
        return Err("missing the fifo and/or fair-share series".into());
    }
    if !any_completed {
        return Err("no row completed any job".into());
    }
    if !any_waited {
        return Err("no row had queue waits; the sweep never saturated the slots".into());
    }
    if !any_rejected {
        return Err("no row rejected any job; admission control was never exercised".into());
    }
    Ok(rows.len())
}

/// Validate a `BENCH_micro.json` document: a non-empty array of row objects
/// with an `op` string, a numeric `n`, and finite non-negative
/// `median_ms`/`min_ms` timings. The `udf_eval` ablation pair must be
/// present, and the compiled arm must beat the interpreted arm by a clear
/// margin (>= 1.5x on the median) — the committed artifact targets >= 2x;
/// the validator leaves slack for machine variance. Returns the row count.
pub fn validate_micro_rows(src: &str) -> Result<usize, String> {
    let doc = parse(src)?;
    let rows = match &doc {
        Json::Arr(rows) if !rows.is_empty() => rows,
        Json::Arr(_) => return Err("empty benchmark array".into()),
        _ => return Err("top level is not a JSON array".into()),
    };
    let mut interpreted = None;
    let mut compiled = None;
    for (i, row) in rows.iter().enumerate() {
        let op = row
            .get("op")
            .and_then(Json::as_str)
            .ok_or_else(|| format!("row {i}: missing string \"op\""))?;
        row.get("n")
            .and_then(Json::as_num)
            .ok_or_else(|| format!("row {i}: missing numeric \"n\""))?;
        let median = row
            .get("median_ms")
            .and_then(Json::as_num)
            .ok_or_else(|| format!("row {i}: missing numeric \"median_ms\""))?;
        let min = row
            .get("min_ms")
            .and_then(Json::as_num)
            .ok_or_else(|| format!("row {i}: missing numeric \"min_ms\""))?;
        if !median.is_finite() || median < 0.0 || !min.is_finite() || min < 0.0 {
            return Err(format!("row {i}: bad timings median={median} min={min}"));
        }
        match op {
            "udf_eval/interpreted" => interpreted = Some(median),
            "udf_eval/compiled" => compiled = Some(median),
            _ => {}
        }
    }
    let interpreted = interpreted.ok_or("missing the udf_eval/interpreted row".to_string())?;
    let compiled = compiled.ok_or("missing the udf_eval/compiled row".to_string())?;
    if compiled * 1.5 > interpreted {
        return Err(format!(
            "compiled UDF evaluation ({compiled:.3} ms) does not clearly beat the \
             interpreter ({interpreted:.3} ms); expected >= 1.5x"
        ));
    }
    Ok(rows.len())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::harness::Measurement;
    use matryoshka_engine::StatsSnapshot;

    fn row(series: &str, x: u64, seconds: f64) -> Row {
        Row {
            figure: "fig7/pagerank-skew-sweep".into(),
            series: series.into(),
            x,
            m: Measurement { outcome: Outcome::Ok, seconds, stats: StatsSnapshot::default() },
        }
    }

    #[test]
    fn rows_round_trip_and_validate() {
        let rows = vec![row("matryoshka", 100, 12.5), row("matryoshka-adaptive", 100, 7.25)];
        let json = rows_to_json(&rows);
        assert_eq!(validate_bench_rows(&json).unwrap(), 2);
        let doc = parse(&json).unwrap();
        let Json::Arr(items) = &doc else { panic!("not an array") };
        assert_eq!(items[1].get("series").unwrap().as_str().unwrap(), "matryoshka-adaptive");
        assert_eq!(items[0].get("seconds").unwrap().as_num().unwrap(), 12.5);
    }

    #[test]
    fn validator_rejects_mangled_documents() {
        assert!(validate_bench_rows("[").is_err(), "truncated");
        assert!(validate_bench_rows("{}").is_err(), "not an array");
        assert!(validate_bench_rows("[]").is_err(), "empty");
        assert!(
            validate_bench_rows(r#"[{"figure": "f", "series": "matryoshka", "seconds": 1.0}]"#)
                .is_err(),
            "adaptive series missing"
        );
        let both = r#"[
            {"figure": "f", "series": "matryoshka", "seconds": 1.0},
            {"figure": "f", "series": "matryoshka-adaptive", "seconds": 0.5}
        ]"#;
        assert_eq!(validate_bench_rows(both).unwrap(), 2);
    }

    #[test]
    fn recovery_validator_checks_series_and_counters() {
        let lossy_row = |series: &str, lost: u64| {
            let stats = StatsSnapshot {
                partitions_lost: lost,
                recompute_nanos: lost * 1_000_000,
                ..Default::default()
            };
            Row {
                figure: "recovery/loss-x-checkpoint".into(),
                series: series.into(),
                x: 0,
                m: Measurement { outcome: Outcome::Ok, seconds: 1.0, stats },
            }
        };
        let good = rows_to_json(&[lossy_row("loss-0", 0), lossy_row("loss-30", 4)]);
        assert_eq!(validate_recovery_rows(&good).unwrap(), 2);
        // A skew artifact is not a recovery artifact: right shape, wrong series.
        let skew = rows_to_json(&[lossy_row("matryoshka", 0), lossy_row("matryoshka-adaptive", 0)]);
        assert!(validate_recovery_rows(&skew).is_err(), "missing loss series must fail");
        let no_losses = rows_to_json(&[lossy_row("loss-0", 0), lossy_row("loss-30", 0)]);
        assert!(validate_recovery_rows(&no_losses).is_err(), "a sweep with no losses must fail");
        let lossy_baseline = rows_to_json(&[lossy_row("loss-0", 2), lossy_row("loss-30", 4)]);
        assert!(validate_recovery_rows(&lossy_baseline).is_err(), "lossy baseline must fail");
        assert!(
            validate_recovery_rows(r#"[{"figure": "f", "series": "loss-0", "seconds": 1.0}]"#)
                .is_err(),
            "recovery counters must be present"
        );
    }

    #[test]
    fn service_validator_checks_policies_and_counters() {
        let service_row = |series: &str, completed: u64, rejected: u64, wait_nanos: u64| {
            let stats = StatsSnapshot {
                jobs_completed: completed,
                jobs_rejected: rejected,
                queue_wait_nanos: wait_nanos,
                ..Default::default()
            };
            Row {
                figure: "service/offered-load".into(),
                series: series.into(),
                x: 20,
                m: Measurement { outcome: Outcome::Ok, seconds: 2.0, stats },
            }
        };
        let good = rows_to_json(&[
            service_row("fifo", 24, 8, 1_000_000),
            service_row("fair-1:3", 24, 8, 500_000),
        ]);
        assert_eq!(validate_service_rows(&good).unwrap(), 2);
        let one_policy = rows_to_json(&[service_row("fifo", 24, 8, 1_000_000)]);
        assert!(validate_service_rows(&one_policy).is_err(), "needs both policies");
        let never_saturated =
            rows_to_json(&[service_row("fifo", 24, 8, 0), service_row("fair-1:3", 24, 8, 0)]);
        assert!(validate_service_rows(&never_saturated).is_err(), "needs queue waits");
        let never_rejected =
            rows_to_json(&[service_row("fifo", 24, 0, 1), service_row("fair-1:3", 24, 0, 1)]);
        assert!(validate_service_rows(&never_rejected).is_err(), "needs admission rejections");
        // A recovery artifact is not a service artifact.
        let recovery = rows_to_json(&[service_row("loss-0", 1, 1, 1)]);
        assert!(validate_service_rows(&recovery).is_err());
    }

    #[test]
    fn micro_rows_validate() {
        let good = r#"[
          {"op": "engine_ops/join", "n": 1000, "median_ms": 5.0, "min_ms": 4.0},
          {"op": "udf_eval/interpreted", "n": 1000, "median_ms": 30.0, "min_ms": 29.0},
          {"op": "udf_eval/compiled", "n": 1000, "median_ms": 10.0, "min_ms": 9.5}
        ]"#;
        assert_eq!(validate_micro_rows(good).unwrap(), 3);
        let missing_arm = r#"[
          {"op": "udf_eval/interpreted", "n": 1000, "median_ms": 30.0, "min_ms": 29.0}
        ]"#;
        assert!(validate_micro_rows(missing_arm).is_err(), "needs both ablation arms");
        let no_speedup = r#"[
          {"op": "udf_eval/interpreted", "n": 1000, "median_ms": 12.0, "min_ms": 11.0},
          {"op": "udf_eval/compiled", "n": 1000, "median_ms": 10.0, "min_ms": 9.5}
        ]"#;
        assert!(validate_micro_rows(no_speedup).is_err(), "needs a clear speedup");
        assert!(validate_micro_rows("[]").is_err());
        assert!(validate_micro_rows(r#"[{"op": "x"}]"#).is_err(), "rows need timings");
    }

    #[test]
    fn parser_handles_escapes_and_nesting() {
        let v = parse(r#"{"a": [1, -2.5e1, "x\"\nA"], "b": {"c": null, "d": true}}"#).unwrap();
        assert_eq!(
            v.get("a").unwrap(),
            &Json::Arr(vec![Json::Num(1.0), Json::Num(-25.0), Json::Str("x\"\nA".into()),])
        );
        assert_eq!(v.get("b").unwrap().get("c"), Some(&Json::Null));
        assert!(parse("[1, 2,,]").is_err());
        assert!(parse("[1] junk").is_err());
    }
}
