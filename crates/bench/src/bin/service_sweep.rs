//! Runs the multi-tenant service sweep implemented in `figures::service`
//! (scheduling policy × offered load, see `docs/SERVICE.md`) and emits the
//! machine-readable `BENCH_service.json` artifact.
//!
//! ```text
//! service_sweep                 run the full sweep, print tables, write BENCH_service.json
//! service_sweep --smoke         run the reduced sweep (fast CI gate), no artifact
//! service_sweep --validate [F]  parse-check an existing artifact (default BENCH_service.json)
//! ```
//!
//! The output path defaults to `BENCH_service.json` in the current
//! directory and can be overridden with the `BENCH_SERVICE_OUT` environment
//! variable.

use std::process::ExitCode;

use matryoshka_bench::{figures, json, print_rows, Profile};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("--validate") => {
            let path = args.get(1).map(String::as_str).unwrap_or("BENCH_service.json");
            let src = match std::fs::read_to_string(path) {
                Ok(s) => s,
                Err(e) => {
                    eprintln!("{path}: {e}");
                    return ExitCode::from(2);
                }
            };
            match json::validate_service_rows(&src) {
                Ok(n) => {
                    println!("ok: {path} ({n} rows)");
                    ExitCode::SUCCESS
                }
                Err(e) => {
                    eprintln!("{path}: invalid benchmark records: {e}");
                    ExitCode::FAILURE
                }
            }
        }
        Some("--smoke") => {
            // The smoke sweep is a gate, not an artifact: print, don't write.
            print_rows(&figures::service::smoke(Profile::from_env()));
            ExitCode::SUCCESS
        }
        None => run(figures::service::run(Profile::from_env())),
        Some(other) => {
            eprintln!("unknown flag {other}\nusage: service_sweep [--smoke | --validate [FILE]]");
            ExitCode::from(2)
        }
    }
}

fn run(rows: Vec<matryoshka_bench::Row>) -> ExitCode {
    print_rows(&rows);
    let path =
        std::env::var("BENCH_SERVICE_OUT").unwrap_or_else(|_| "BENCH_service.json".to_string());
    let doc = json::rows_to_json(&rows);
    match json::validate_service_rows(&doc) {
        Ok(_) => {}
        Err(e) => {
            eprintln!("refusing to write {path}: generated rows invalid: {e}");
            return ExitCode::FAILURE;
        }
    }
    if let Err(e) = std::fs::write(&path, &doc) {
        eprintln!("cannot write {path}: {e}");
        return ExitCode::FAILURE;
    }
    println!("\nwrote {} rows to {path}", rows.len());
    ExitCode::SUCCESS
}
