//! Reproduces Fig. 3 (weak scaling of the iterative tasks).

fn main() {
    let rows = matryoshka_bench::figures::fig3::run(matryoshka_bench::Profile::from_env());
    matryoshka_bench::print_rows(&rows);
}
