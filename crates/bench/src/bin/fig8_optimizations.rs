//! Reproduces the paper experiment implemented in `figures::fig8`.

fn main() {
    let rows = matryoshka_bench::figures::fig8::run(matryoshka_bench::Profile::from_env());
    matryoshka_bench::print_rows(&rows);
}
