//! Reproduces the paper experiment implemented in `figures::ablations`.

fn main() {
    let rows = matryoshka_bench::figures::ablations::run(matryoshka_bench::Profile::from_env());
    matryoshka_bench::print_rows(&rows);
}
