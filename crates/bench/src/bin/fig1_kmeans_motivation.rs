//! Reproduces Fig. 1 (K-means motivation). `MATRYOSHKA_SCALE=full` widens
//! the sweep.

fn main() {
    let rows = matryoshka_bench::figures::fig1::run(matryoshka_bench::Profile::from_env());
    matryoshka_bench::print_rows(&rows);
}
