//! Reproduces Fig. 5 (Bounce Rate weak scaling + scale-out, incl. DIQL).

fn main() {
    let rows = matryoshka_bench::figures::fig5::run(matryoshka_bench::Profile::from_env());
    matryoshka_bench::print_rows(&rows);
}
