//! Reproduces the paper experiment implemented in `figures::fig9`.

fn main() {
    let rows = matryoshka_bench::figures::fig9::run(matryoshka_bench::Profile::from_env());
    matryoshka_bench::print_rows(&rows);
}
