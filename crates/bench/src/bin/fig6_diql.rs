//! Reproduces the paper experiment implemented in `figures::fig6`.

fn main() {
    let rows = matryoshka_bench::figures::fig6::run(matryoshka_bench::Profile::from_env());
    matryoshka_bench::print_rows(&rows);
}
