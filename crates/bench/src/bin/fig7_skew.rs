//! Reproduces the paper experiment implemented in `figures::fig7` and emits
//! the machine-readable `BENCH_skew.json` artifact.
//!
//! ```text
//! fig7_skew                 run the full figure, print tables, write BENCH_skew.json
//! fig7_skew --smoke         run only the adaptive skew sweep (fast CI gate)
//! fig7_skew --validate [F]  parse-check an existing artifact (default BENCH_skew.json)
//! ```
//!
//! The output path defaults to `BENCH_skew.json` in the current directory and
//! can be overridden with the `BENCH_SKEW_OUT` environment variable.

use std::process::ExitCode;

use matryoshka_bench::{figures, json, print_rows, Profile};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("--validate") => {
            let path = args.get(1).map(String::as_str).unwrap_or("BENCH_skew.json");
            let src = match std::fs::read_to_string(path) {
                Ok(s) => s,
                Err(e) => {
                    eprintln!("{path}: {e}");
                    return ExitCode::from(2);
                }
            };
            match json::validate_bench_rows(&src) {
                Ok(n) => {
                    println!("ok: {path} ({n} rows)");
                    ExitCode::SUCCESS
                }
                Err(e) => {
                    eprintln!("{path}: invalid benchmark records: {e}");
                    ExitCode::FAILURE
                }
            }
        }
        Some("--smoke") => run(figures::fig7::skew_sweep(Profile::from_env())),
        None => run(figures::fig7::run(Profile::from_env())),
        Some(other) => {
            eprintln!("unknown flag {other}\nusage: fig7_skew [--smoke | --validate [FILE]]");
            ExitCode::from(2)
        }
    }
}

fn run(rows: Vec<matryoshka_bench::Row>) -> ExitCode {
    print_rows(&rows);
    let path = std::env::var("BENCH_SKEW_OUT").unwrap_or_else(|_| "BENCH_skew.json".to_string());
    let doc = json::rows_to_json(&rows);
    if let Err(e) = std::fs::write(&path, &doc) {
        eprintln!("cannot write {path}: {e}");
        return ExitCode::FAILURE;
    }
    println!("\nwrote {} rows to {path}", rows.len());
    ExitCode::SUCCESS
}
