//! Experiment scale profiles.
//!
//! Real record counts are scaled down from the paper's inputs while the
//! *modeled* bytes stay at paper scale (each in-memory record carries a
//! `record_bytes` weight), so the simulated cluster sees the paper's data
//! volumes while the harness stays fast. `MATRYOSHKA_SCALE=full` raises the
//! real record counts and widens the sweeps for higher-fidelity curves.

/// Scale profile, selected by the `MATRYOSHKA_SCALE` environment variable
/// (`quick` is the default; `full` runs the wide sweeps).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Profile {
    /// Small record counts, 3-4 sweep points: seconds per figure.
    Quick,
    /// Paper-shaped sweeps: minutes per figure.
    Full,
}

impl Profile {
    /// Read the profile from the environment.
    pub fn from_env() -> Profile {
        match std::env::var("MATRYOSHKA_SCALE").as_deref() {
            Ok("full") => Profile::Full,
            _ => Profile::Quick,
        }
    }

    /// Pick a sweep: the full list, or the quick subset.
    pub fn sweep(&self, full: &[u64], quick: &[u64]) -> Vec<u64> {
        match self {
            Profile::Full => full.to_vec(),
            Profile::Quick => quick.to_vec(),
        }
    }

    /// Scale a real record count down for the quick profile.
    pub fn records(&self, full: u64) -> u64 {
        match self {
            Profile::Full => full,
            Profile::Quick => (full / 8).max(1024),
        }
    }
}

/// Gigabytes helper for modeled data volumes.
pub const fn gb(n: u64) -> f64 {
    (n * (1 << 30)) as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_scales_records_down() {
        assert_eq!(Profile::Quick.records(1 << 20), 1 << 17);
        assert_eq!(Profile::Full.records(1 << 20), 1 << 20);
        assert_eq!(Profile::Quick.records(100), 1024, "floor keeps cases meaningful");
    }

    #[test]
    fn sweep_picks_by_profile() {
        assert_eq!(Profile::Quick.sweep(&[1, 2, 3], &[1, 3]), vec![1, 3]);
        assert_eq!(Profile::Full.sweep(&[1, 2, 3], &[1, 3]), vec![1, 2, 3]);
    }
}
