//! Microbenchmarks of the engine's *real* (wall-clock) performance: core
//! operators, lifted operators vs. hand-flattened equivalents, and
//! lifted-loop overhead. These complement the simulated figures: the
//! simulator's numbers are modeled, these are measured.
//!
//! Uses a small built-in timing harness (median of repeated runs) so the
//! benches need no external framework. Run with
//! `cargo bench -p matryoshka-bench --bench micro`.

use std::time::Instant;

use matryoshka_core::{group_by_key_into_nested_bag, MatryoshkaConfig};
use matryoshka_engine::{ClusterConfig, Engine};

fn engine() -> Engine {
    Engine::new(ClusterConfig::local_test())
}

/// Time `f` a few times and report the median wall-clock duration.
fn bench<R>(group: &str, name: &str, mut f: impl FnMut() -> R) {
    const WARMUP: usize = 1;
    const RUNS: usize = 5;
    for _ in 0..WARMUP {
        std::hint::black_box(f());
    }
    let mut times: Vec<f64> = (0..RUNS)
        .map(|_| {
            let t0 = Instant::now();
            std::hint::black_box(f());
            t0.elapsed().as_secs_f64()
        })
        .collect();
    times.sort_by(f64::total_cmp);
    let median = times[RUNS / 2];
    let min = times[0];
    println!("{group:<28} {name:<28} median {:>9.3} ms   min {:>9.3} ms", median * 1e3, min * 1e3);
}

fn bench_engine_ops() {
    for &n in &[10_000u64, 100_000] {
        bench("engine_ops", &format!("reduce_by_key/{n}"), || {
            let e = engine();
            let bag = e.generate(n, 8, |i| (i % 997, 1u64));
            bag.reduce_by_key(|a, b| a + b).count().unwrap()
        });
        bench("engine_ops", &format!("join/{n}"), || {
            let e = engine();
            let l = e.generate(n, 8, |i| (i % 997, i));
            let r = e.generate(n / 10, 4, |i| (i % 997, i * 2));
            l.join(&r).count().unwrap()
        });
        bench("engine_ops", &format!("group_by_key/{n}"), || {
            let e = engine();
            let bag = e.generate(n, 8, |i| (i % 997, i));
            bag.group_by_key().count().unwrap()
        });
        bench("engine_ops", &format!("distinct/{n}"), || {
            let e = engine();
            let bag = e.generate(n, 8, |i| i % 4096);
            bag.distinct().count().unwrap()
        });
    }
}

fn bench_lifted_vs_flat() {
    let visits: Vec<(u32, u64)> = (0..50_000u64).map(|i| ((i % 64) as u32, i % 1000)).collect();
    bench("lifted_vs_flat_bounce_rate", "lifted", || {
        let e = engine();
        let bag = e.parallelize(visits.clone(), 8);
        matryoshka_tasks::bounce_rate::matryoshka(&e, &bag, MatryoshkaConfig::optimized()).unwrap()
    });
    bench("lifted_vs_flat_bounce_rate", "hand_flattened", || {
        // Listing 3 of the paper, written directly against the engine.
        let e = engine();
        let visits = e.parallelize(visits.clone(), 8);
        let counts = visits.map(|&(d, ip)| ((d, ip), 1u64)).reduce_by_key(|a, b| a + b);
        let bounces = counts
            .filter(|(_, c)| *c == 1)
            .map(|((d, _), _)| (*d, 1u64))
            .reduce_by_key(|a, b| a + b);
        let totals = visits.distinct().map(|&(d, _)| (d, 1u64)).reduce_by_key(|a, b| a + b);
        let mut out =
            bounces.join(&totals).map(|(d, (b, t))| (*d, *b as f64 / *t as f64)).collect().unwrap();
        out.sort_by_key(|(d, _)| *d);
        out
    });
}

fn bench_lifted_loop() {
    for &tags in &[16u64, 256] {
        bench("lifted_loop", &format!("countdown/{tags}"), || {
            let e = engine();
            let ctx = matryoshka_core::LiftingContext::new(
                e.clone(),
                e.parallelize((0..tags).collect(), 4),
                tags,
                MatryoshkaConfig::optimized(),
            );
            let init = matryoshka_core::InnerScalar::from_repr(
                e.parallelize((0..tags).map(|t| (t, (t % 7) as i64)).collect(), 4),
                ctx,
            );
            matryoshka_core::lifted_while(
                &init,
                |s| {
                    let next = s.map(|x| x - 1);
                    let cond = next.map(|x| *x > 0);
                    Ok((next, cond))
                },
                None,
            )
            .unwrap()
            .collect()
            .unwrap()
        });
    }
}

fn bench_nesting() {
    bench("nesting_primitives", "group_by_key_into_nested_bag_100k", || {
        let e = engine();
        let bag = e.generate(100_000, 8, |i| ((i % 512) as u32, i));
        group_by_key_into_nested_bag(&e, &bag, MatryoshkaConfig::optimized()).unwrap().ctx().size()
    });
}

fn main() {
    bench_engine_ops();
    bench_lifted_vs_flat();
    bench_lifted_loop();
    bench_nesting();
}
