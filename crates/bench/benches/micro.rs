//! Criterion microbenchmarks of the engine's *real* (wall-clock)
//! performance: core operators, lifted operators vs. hand-flattened
//! equivalents, and lifted-loop overhead. These complement the simulated
//! figures: the simulator's numbers are modeled, these are measured.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use matryoshka_core::{group_by_key_into_nested_bag, MatryoshkaConfig};
use matryoshka_engine::{ClusterConfig, Engine};

fn engine() -> Engine {
    Engine::new(ClusterConfig::local_test())
}

fn bench_engine_ops(c: &mut Criterion) {
    let mut g = c.benchmark_group("engine_ops");
    for &n in &[10_000u64, 100_000] {
        g.bench_with_input(BenchmarkId::new("reduce_by_key", n), &n, |b, &n| {
            b.iter(|| {
                let e = engine();
                let bag = e.generate(n, 8, |i| (i % 997, 1u64));
                bag.reduce_by_key(|a, b| a + b).count().unwrap()
            })
        });
        g.bench_with_input(BenchmarkId::new("join", n), &n, |b, &n| {
            b.iter(|| {
                let e = engine();
                let l = e.generate(n, 8, |i| (i % 997, i));
                let r = e.generate(n / 10, 4, |i| (i % 997, i * 2));
                l.join(&r).count().unwrap()
            })
        });
        g.bench_with_input(BenchmarkId::new("group_by_key", n), &n, |b, &n| {
            b.iter(|| {
                let e = engine();
                let bag = e.generate(n, 8, |i| (i % 997, i));
                bag.group_by_key().count().unwrap()
            })
        });
        g.bench_with_input(BenchmarkId::new("distinct", n), &n, |b, &n| {
            b.iter(|| {
                let e = engine();
                let bag = e.generate(n, 8, |i| i % 4096);
                bag.distinct().count().unwrap()
            })
        });
    }
    g.finish();
}

fn bench_lifted_vs_flat(c: &mut Criterion) {
    let mut g = c.benchmark_group("lifted_vs_flat_bounce_rate");
    let visits: Vec<(u32, u64)> = (0..50_000u64).map(|i| ((i % 64) as u32, i % 1000)).collect();
    g.bench_function("lifted", |b| {
        b.iter(|| {
            let e = engine();
            let bag = e.parallelize(visits.clone(), 8);
            matryoshka_tasks::bounce_rate::matryoshka(&e, &bag, MatryoshkaConfig::optimized()).unwrap()
        })
    });
    g.bench_function("hand_flattened", |b| {
        // Listing 3 of the paper, written directly against the engine.
        b.iter(|| {
            let e = engine();
            let visits = e.parallelize(visits.clone(), 8);
            let counts = visits.map(|&(d, ip)| ((d, ip), 1u64)).reduce_by_key(|a, b| a + b);
            let bounces = counts
                .filter(|(_, c)| *c == 1)
                .map(|((d, _), _)| (*d, 1u64))
                .reduce_by_key(|a, b| a + b);
            let totals = visits.distinct().map(|&(d, _)| (d, 1u64)).reduce_by_key(|a, b| a + b);
            let mut out = bounces
                .join(&totals)
                .map(|(d, (b, t))| (*d, *b as f64 / *t as f64))
                .collect()
                .unwrap();
            out.sort_by_key(|(d, _)| *d);
            out
        })
    });
    g.finish();
}

fn bench_lifted_loop(c: &mut Criterion) {
    let mut g = c.benchmark_group("lifted_loop");
    for &tags in &[16u64, 256] {
        g.bench_with_input(BenchmarkId::new("countdown", tags), &tags, |b, &tags| {
            b.iter(|| {
                let e = engine();
                let ctx = matryoshka_core::LiftingContext::new(
                    e.clone(),
                    e.parallelize((0..tags).collect(), 4),
                    tags,
                    MatryoshkaConfig::optimized(),
                );
                let init = matryoshka_core::InnerScalar::from_repr(
                    e.parallelize((0..tags).map(|t| (t, (t % 7) as i64)).collect(), 4),
                    ctx,
                );
                matryoshka_core::lifted_while(
                    &init,
                    |s| {
                        let next = s.map(|x| x - 1);
                        let cond = next.map(|x| *x > 0);
                        Ok((next, cond))
                    },
                    None,
                )
                .unwrap()
                .collect()
                .unwrap()
            })
        });
    }
    g.finish();
}

fn bench_nesting(c: &mut Criterion) {
    let mut g = c.benchmark_group("nesting_primitives");
    g.bench_function("group_by_key_into_nested_bag_100k", |b| {
        b.iter(|| {
            let e = engine();
            let bag = e.generate(100_000, 8, |i| ((i % 512) as u32, i));
            group_by_key_into_nested_bag(&e, &bag, MatryoshkaConfig::optimized())
                .unwrap()
                .ctx()
                .size()
        })
    });
    g.finish();
}

criterion_group!(benches, bench_engine_ops, bench_lifted_vs_flat, bench_lifted_loop, bench_nesting);
criterion_main!(benches);
