//! Microbenchmarks of the engine's *real* (wall-clock) performance: core
//! operators, the co-partitioned iterative fast path, lifted operators vs.
//! hand-flattened equivalents, and lifted-loop overhead. These complement
//! the simulated figures: the simulator's numbers are modeled, these are
//! measured.
//!
//! Uses a small built-in timing harness (median of repeated runs) so the
//! benches need no external framework. Run with
//! `cargo bench -p matryoshka-bench --bench micro`.
//!
//! Besides the human-readable table on stdout, every run writes a
//! machine-readable `BENCH_micro.json` (op, n, median/min milliseconds) so
//! successive PRs leave a comparable perf trajectory. The output path
//! defaults to the repository root and can be overridden with the
//! `BENCH_MICRO_OUT` environment variable.
//!
//! Pass `--smoke` (as `cargo bench -p matryoshka-bench --bench micro --
//! --smoke`) for a seconds-scale run over tiny inputs: CI uses it to keep
//! the harness and its JSON emitter from rotting.

use std::time::Instant;

use matryoshka_core::{group_by_key_into_nested_bag, MatryoshkaConfig};
use matryoshka_engine::{ClusterConfig, Engine};

fn engine() -> Engine {
    Engine::new(ClusterConfig::local_test())
}

/// One benchmark's recorded timing, destined for `BENCH_micro.json`.
struct BenchRecord {
    op: String,
    n: u64,
    median_ms: f64,
    min_ms: f64,
}

/// Scaling knobs: the full run measures real sizes; the smoke run only
/// proves the harness executes end to end.
struct Harness {
    smoke: bool,
    warmup: usize,
    runs: usize,
    records: Vec<BenchRecord>,
}

impl Harness {
    fn new(smoke: bool) -> Harness {
        Harness {
            smoke,
            warmup: if smoke { 0 } else { 1 },
            runs: if smoke { 2 } else { 5 },
            records: Vec::new(),
        }
    }

    /// Pick `full` normally, `smoke` under `--smoke`.
    fn size(&self, full: u64, smoke: u64) -> u64 {
        if self.smoke {
            smoke
        } else {
            full
        }
    }

    /// Time `f` a few times and record the median/min wall-clock duration.
    fn bench<R>(&mut self, op: &str, n: u64, mut f: impl FnMut() -> R) {
        for _ in 0..self.warmup {
            std::hint::black_box(f());
        }
        let mut times: Vec<f64> = (0..self.runs)
            .map(|_| {
                let t0 = Instant::now();
                std::hint::black_box(f());
                t0.elapsed().as_secs_f64()
            })
            .collect();
        times.sort_by(f64::total_cmp);
        let median = times[self.runs / 2] * 1e3;
        let min = times[0] * 1e3;
        println!("{op:<44} n={n:<9} median {median:>9.3} ms   min {min:>9.3} ms");
        self.records.push(BenchRecord { op: op.to_string(), n, median_ms: median, min_ms: min });
    }

    /// Serialize all records as a JSON array (no external dependencies).
    fn to_json(&self) -> String {
        let mut out = String::from("[\n");
        for (i, r) in self.records.iter().enumerate() {
            let sep = if i + 1 == self.records.len() { "" } else { "," };
            out.push_str(&format!(
                "  {{\"op\": \"{}\", \"n\": {}, \"median_ms\": {:.3}, \"min_ms\": {:.3}}}{}\n",
                r.op, r.n, r.median_ms, r.min_ms, sep
            ));
        }
        out.push_str("]\n");
        out
    }
}

fn bench_engine_ops(h: &mut Harness) {
    let sizes = if h.smoke { vec![2_000u64] } else { vec![10_000u64, 100_000] };
    for &n in &sizes {
        h.bench("engine_ops/reduce_by_key", n, || {
            let e = engine();
            let bag = e.generate(n, 8, |i| (i % 997, 1u64));
            bag.reduce_by_key(|a, b| a + b).count().unwrap()
        });
        h.bench("engine_ops/join", n, || {
            let e = engine();
            let l = e.generate(n, 8, |i| (i % 997, i));
            let r = e.generate(n / 10, 4, |i| (i % 997, i * 2));
            l.join(&r).count().unwrap()
        });
        h.bench("engine_ops/group_by_key", n, || {
            let e = engine();
            let bag = e.generate(n, 8, |i| (i % 997, i));
            bag.group_by_key().count().unwrap()
        });
        h.bench("engine_ops/distinct", n, || {
            let e = engine();
            let bag = e.generate(n, 8, |i| i % 4096);
            bag.distinct().count().unwrap()
        });
    }
}

/// The workload the host-executor fast path targets: one shuffle up front,
/// then an iterative join + reduce loop that stays entirely on the
/// co-partitioned (narrow) path — as in the paper's iterative experiments,
/// where per-iteration host overhead is what separates the flattened program
/// from hand-written flat dataflow.
fn bench_copartitioned_loop(h: &mut Harness) {
    let n = h.size(100_000, 2_000);
    let iters = if h.smoke { 2 } else { 8 };
    h.bench("copartitioned_loop/join_reduce", n, || {
        let e = engine();
        let base = e.generate(n, 8, |i| (i, i)).partition_by_key(8);
        base.count().unwrap();
        let mut cur = base;
        for _ in 0..iters {
            let stepped = cur.map_values(|v| v + 1);
            cur = cur
                .join_into(8, &stepped)
                .map_values(|&(a, b)| a + b)
                .reduce_by_key_into(8, |a, b| a + b);
            cur.count().unwrap();
        }
        cur.count().unwrap()
    });
    h.bench("copartitioned_loop/shuffle_scatter", n, || {
        // Repeated explicit re-partitioning: isolates `scatter_by_key`.
        let e = engine();
        let mut cur = e.generate(n, 8, |i| (i, i));
        for p in [16usize, 8, 12, 8] {
            cur = cur.partition_by_key(p);
        }
        cur.count().unwrap()
    });
}

/// The workload narrow-stage fusion targets: a six-op shuffle-free chain
/// over a materialized base, measured with fusion on and off (the ablation
/// EXPERIMENTS.md reports). The chain is bound before the action so it is
/// exclusively owned at eval time and actually fuses.
fn bench_narrow_chain(h: &mut Harness) {
    let n = h.size(1_000_000, 10_000);
    for (label, fuse) in [("narrow_chain/fused", true), ("narrow_chain/unfused", false)] {
        let e = Engine::new(ClusterConfig { fuse_narrow: fuse, ..ClusterConfig::local_test() });
        let base = e.generate(n, 8, |i| i);
        base.count().unwrap(); // materialize once; measure the chain alone
        h.bench(label, n, || {
            let tail = base
                .map(|&x| x.wrapping_mul(0x9E37_79B9))
                .filter(|&x| x % 5 != 0)
                .map(|&x| x >> 3)
                .filter(|&x| x % 3 != 0)
                .map(|&x| x ^ 0xFF)
                .flat_map(|&x| if x % 2 == 0 { Some(x) } else { None });
            tail.count().unwrap()
        });
    }
}

fn bench_lifted_vs_flat(h: &mut Harness) {
    let n = h.size(50_000, 2_000);
    let visits: Vec<(u32, u64)> = (0..n).map(|i| ((i % 64) as u32, i % 1000)).collect();
    let v1 = visits.clone();
    h.bench("lifted_vs_flat_bounce_rate/lifted", n, move || {
        let e = engine();
        let bag = e.parallelize(v1.clone(), 8);
        matryoshka_tasks::bounce_rate::matryoshka(&e, &bag, MatryoshkaConfig::optimized()).unwrap()
    });
    h.bench("lifted_vs_flat_bounce_rate/hand_flattened", n, move || {
        // Listing 3 of the paper, written directly against the engine.
        let e = engine();
        let visits = e.parallelize(visits.clone(), 8);
        let counts = visits.map(|&(d, ip)| ((d, ip), 1u64)).reduce_by_key(|a, b| a + b);
        let bounces = counts
            .filter(|(_, c)| *c == 1)
            .map(|((d, _), _)| (*d, 1u64))
            .reduce_by_key(|a, b| a + b);
        let totals = visits.distinct().map(|&(d, _)| (d, 1u64)).reduce_by_key(|a, b| a + b);
        let mut out =
            bounces.join(&totals).map(|(d, (b, t))| (*d, *b as f64 / *t as f64)).collect().unwrap();
        out.sort_by_key(|(d, _)| *d);
        out
    });
}

fn bench_lifted_loop(h: &mut Harness) {
    let sizes = if h.smoke { vec![16u64] } else { vec![16u64, 256] };
    for &tags in &sizes {
        h.bench("lifted_loop/countdown", tags, || {
            let e = engine();
            let ctx = matryoshka_core::LiftingContext::new(
                e.clone(),
                e.parallelize((0..tags).collect(), 4),
                tags,
                MatryoshkaConfig::optimized(),
            );
            let init = matryoshka_core::InnerScalar::from_repr(
                e.parallelize((0..tags).map(|t| (t, (t % 7) as i64)).collect(), 4),
                ctx,
            );
            matryoshka_core::lifted_while(
                &init,
                |s| {
                    let next = s.map(|x| x - 1);
                    let cond = next.map(|x| *x > 0);
                    Ok((next, cond))
                },
                None,
            )
            .unwrap()
            .collect()
            .unwrap()
        });
    }
}

/// The workload the plan-rewrite pass targets: a driver loop whose
/// condition recomputes a full `count(distinct(..))` shuffle every
/// iteration. With hoisting on, the invariant subplan is cached above the
/// loop and the per-iteration shuffles vanish (the ablation EXPERIMENTS.md
/// reports alongside narrow-stage fusion).
fn bench_plan_rewrites(h: &mut Harness) {
    use matryoshka_core::PlanRewriteConfig;
    use matryoshka_ir::ast::{BinOp, Expr};
    use matryoshka_ir::{Lowering, RtVal, Value};

    let n = h.size(200_000, 2_000);
    // loop (i = 0) while i < count(distinct(source(xs))) do (i + 1) yield i
    let invariant = Expr::Count(Box::new(Expr::Distinct(Box::new(Expr::Source("xs".into())))));
    let program = Expr::Loop {
        init: vec![("i".into(), Expr::long(0))],
        cond: Box::new(Expr::bin(BinOp::Lt, Expr::var("i"), invariant)),
        step: vec![Expr::bin(BinOp::Add, Expr::var("i"), Expr::long(1))],
        result: Box::new(Expr::var("i")),
    };
    let xs: Vec<Value> = (0..n as i64).map(|i| Value::Long(i % 24)).collect();
    for (label, hoist) in [("plan_rewrites/hoist_off", false), ("plan_rewrites/hoist_on", true)] {
        h.bench(label, n, || {
            let e = engine();
            let inputs =
                std::collections::HashMap::from([("xs".to_string(), e.parallelize(xs.clone(), 8))]);
            let mut cfg = MatryoshkaConfig::optimized();
            cfg.plan =
                if hoist { PlanRewriteConfig::enabled() } else { PlanRewriteConfig::default() };
            match Lowering::new(e, cfg).run(&program, &inputs).unwrap() {
                RtVal::Scalar(v) => v,
                other => panic!("expected a scalar, got {other:?}"),
            }
        });
    }
}

/// The workload UDF compilation targets: an arithmetic-heavy scalar map UDF
/// (nested `let`s, an 8-iteration scalar loop, mixed Long/Double math)
/// evaluated per record by the lowering interpreter, plus a compiled
/// two-parameter fold combiner — once through the `eval_pure` tree walker
/// (`interpret_udfs: true`) and once compiled to slot-resolved form
/// (the default). The ablation the UDF-compilation pass is judged by.
fn bench_udf_eval(h: &mut Harness) {
    use matryoshka_ir::{Lowering, RtVal, Value};

    let n = h.size(200_000, 2_000);
    let program = matryoshka_ir::parse_program(
        "fold(map(source(xs), v =>
            let a = v.0 * 3 + v.1 in
            let b = a * a + v.0 in
            let r = loop (i = 8, acc = b) while i > 0 do (i - 1, acc + a * i) yield acc in
            if toDouble(r) > 100000.0 then toDouble(r) / 2.0 else toDouble(a + b)),
         0.0, (s, x) => s + x)",
    )
    .expect("udf_eval bench program parses");
    let xs: Vec<Value> = (0..n as i64)
        .map(|i| Value::tuple(vec![Value::Long(i % 1000), Value::Long(i % 37)]))
        .collect();
    for (label, interpret) in [("udf_eval/interpreted", true), ("udf_eval/compiled", false)] {
        h.bench(label, n, || {
            let e = engine();
            let inputs =
                std::collections::HashMap::from([("xs".to_string(), e.parallelize(xs.clone(), 8))]);
            let mut cfg = MatryoshkaConfig::optimized();
            cfg.interpret_udfs = interpret;
            match Lowering::new(e, cfg).run(&program, &inputs).unwrap() {
                RtVal::Scalar(v) => v,
                other => panic!("expected a scalar, got {other:?}"),
            }
        });
    }
}

fn bench_nesting(h: &mut Harness) {
    let n = h.size(100_000, 2_000);
    h.bench("nesting_primitives/group_by_key_into_nested_bag", n, || {
        let e = engine();
        let bag = e.generate(n, 8, |i| ((i % 512) as u32, i));
        group_by_key_into_nested_bag(&e, &bag, MatryoshkaConfig::optimized()).unwrap().ctx().size()
    });
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    // `--validate <path>`: check an existing BENCH_micro.json artifact
    // (shape + the udf_eval compiled-beats-interpreted invariant) instead
    // of running the benches. CI runs this against the committed artifact.
    if let Some(i) = args.iter().position(|a| a == "--validate") {
        let path = args.get(i + 1).map(String::as_str).unwrap_or("BENCH_micro.json").to_string();
        // `cargo bench` runs with the package as cwd; resolve repo-root
        // relative paths the same way the writer does.
        let path = if std::path::Path::new(&path).exists() {
            path
        } else {
            format!("{}/../../{path}", env!("CARGO_MANIFEST_DIR"))
        };
        let src = std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {path}: {e}"));
        match matryoshka_bench::validate_micro_rows(&src) {
            Ok(rows) => {
                println!("{path}: {rows} benchmark rows validated");
                return;
            }
            Err(e) => panic!("{path}: {e}"),
        }
    }
    let smoke = args.iter().any(|a| a == "--smoke");
    let mut h = Harness::new(smoke);
    bench_engine_ops(&mut h);
    bench_copartitioned_loop(&mut h);
    bench_narrow_chain(&mut h);
    bench_lifted_vs_flat(&mut h);
    bench_udf_eval(&mut h);
    bench_lifted_loop(&mut h);
    bench_plan_rewrites(&mut h);
    bench_nesting(&mut h);

    let out_path = std::env::var("BENCH_MICRO_OUT").unwrap_or_else(|_| {
        // crates/bench -> repository root.
        format!("{}/../../BENCH_micro.json", env!("CARGO_MANIFEST_DIR"))
    });
    std::fs::write(&out_path, h.to_json()).expect("write BENCH_micro.json");
    println!("\nwrote {} records to {out_path}", h.records.len());
}
