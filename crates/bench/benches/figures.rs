//! `cargo bench -p matryoshka-bench --bench figures` regenerates every
//! table/figure of the paper's evaluation section on the simulated cluster
//! and prints the series the paper plots. Scale with `MATRYOSHKA_SCALE=full`.

use matryoshka_bench::{figures, print_csv, print_rows, Profile};

fn main() {
    // Under `cargo bench`, ignore libtest-style flags like `--bench`.
    let profile = Profile::from_env();
    let mut rows = Vec::new();
    let sections: Vec<(&str, fn(Profile) -> Vec<matryoshka_bench::Row>)> = vec![
        ("fig1", figures::fig1::run),
        ("fig3", figures::fig3::run),
        ("fig4", figures::fig4::run),
        ("fig5", figures::fig5::run),
        ("fig6", figures::fig6::run),
        ("fig7", figures::fig7::run),
        ("fig8", figures::fig8::run),
        ("fig9", figures::fig9::run),
        ("ablations", figures::ablations::run),
    ];
    for (name, run) in sections {
        eprintln!("[figures] running {name} ({profile:?}) ...");
        rows.extend(run(profile));
    }
    print_rows(&rows);
    if std::env::var("MATRYOSHKA_CSV").is_ok() {
        print_csv(&rows);
    }
}
