//! A small deterministic pseudo-random number generator.
//!
//! The generators in this crate only need a fast, seedable, portable source
//! of uniform bits — not cryptographic strength — so we use xoshiro256++
//! (Blackman & Vigna) seeded via SplitMix64, implemented here in ~40 lines
//! rather than pulling in an external crate. Output is identical across
//! platforms and runs for a given seed.

use std::ops::Range;

/// A seedable xoshiro256++ generator.
#[derive(Debug, Clone)]
pub struct SmallRng {
    s: [u64; 4],
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl SmallRng {
    /// Build a generator from a 64-bit seed (expanded with SplitMix64 so
    /// that nearby seeds give unrelated streams).
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        SmallRng {
            s: [splitmix64(&mut sm), splitmix64(&mut sm), splitmix64(&mut sm), splitmix64(&mut sm)],
        }
    }

    /// Next uniform 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[0].wrapping_add(self.s[3]).rotate_left(23).wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform `f64` in `[0, 1)` (53 bits of precision).
    pub fn gen_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform `u64` in `[range.start, range.end)`.
    ///
    /// Uses rejection-free modulo reduction; the bias is below 2^-32 for the
    /// range sizes the generators use, far below what any consumer here can
    /// observe.
    pub fn gen_range(&mut self, range: Range<u64>) -> u64 {
        let width = range.end.checked_sub(range.start).expect("empty range");
        assert!(width > 0, "gen_range needs a non-empty range");
        range.start + self.next_u64() % width
    }

    /// Uniform `u32` in `[range.start, range.end)`.
    pub fn gen_range_u32(&mut self, range: Range<u32>) -> u32 {
        self.gen_range(range.start as u64..range.end as u64) as u32
    }

    /// `true` with probability `p`.
    pub fn gen_bool(&mut self, p: f64) -> bool {
        self.gen_f64() < p
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        let xs: Vec<u64> = (0..32).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..32).map(|_| b.next_u64()).collect();
        assert_eq!(xs, ys);
    }

    #[test]
    fn seeds_give_distinct_streams() {
        let mut a = SmallRng::seed_from_u64(1);
        let mut b = SmallRng::seed_from_u64(2);
        assert_ne!(
            (0..8).map(|_| a.next_u64()).collect::<Vec<_>>(),
            (0..8).map(|_| b.next_u64()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn f64_stays_in_unit_interval() {
        let mut r = SmallRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x = r.gen_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut r = SmallRng::seed_from_u64(9);
        for _ in 0..10_000 {
            let x = r.gen_range(10..17);
            assert!((10..17).contains(&x));
        }
    }

    #[test]
    fn f64_mean_is_roughly_half() {
        let mut r = SmallRng::seed_from_u64(3);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| r.gen_f64()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean} too far from 0.5");
    }
}
