//! Point-cloud generation for K-means with multiple initial centroid
//! configurations (paper Sec. 2.3, Fig. 1).

use crate::rng::SmallRng;

/// A point in `d`-dimensional space.
pub type Point = Vec<f64>;

/// Shape of a K-means input.
#[derive(Debug, Clone)]
pub struct KmeansSpec {
    /// Number of points.
    pub points: u64,
    /// Dimensionality.
    pub dim: usize,
    /// Number of true (generating) clusters.
    pub true_clusters: usize,
    /// Number of clusters K to fit.
    pub k: usize,
    /// Standard deviation of each generated blob.
    pub spread: f64,
    /// RNG seed.
    pub seed: u64,
}

impl KmeansSpec {
    /// A small default suitable for tests.
    pub fn small() -> Self {
        KmeansSpec { points: 2_000, dim: 2, true_clusters: 4, k: 4, spread: 0.05, seed: 21 }
    }
}

/// Generate a point cloud: `true_clusters` Gaussian-ish blobs centered at
/// deterministic positions in the unit cube (box-muller-free: sums of
/// uniforms, which is plenty for clustering benchmarks).
pub fn point_cloud(spec: &KmeansSpec) -> Vec<Point> {
    let mut rng = SmallRng::seed_from_u64(spec.seed);
    let centers = blob_centers(spec.true_clusters, spec.dim, spec.seed);
    (0..spec.points)
        .map(|i| {
            let c = &centers[(i % spec.true_clusters as u64) as usize];
            (0..spec.dim)
                .map(|d| {
                    // Irwin-Hall(4) centered: approximately normal.
                    let noise: f64 = (0..4).map(|_| rng.gen_f64()).sum::<f64>() / 2.0 - 1.0;
                    c[d] + noise * spec.spread
                })
                .collect()
        })
        .collect()
}

/// Generate `configs` different random initial centroid sets of `k`
/// centroids each — the hyperparameter configurations of Sec. 2.3. Returned
/// as `(config_id, centroids)` pairs.
pub fn initial_centroid_configs(spec: &KmeansSpec, configs: u32) -> Vec<(u32, Vec<Point>)> {
    let mut rng = SmallRng::seed_from_u64(spec.seed.wrapping_add(0x9e3779b9));
    (0..configs)
        .map(|id| {
            let centroids =
                (0..spec.k).map(|_| (0..spec.dim).map(|_| rng.gen_f64()).collect()).collect();
            (id, centroids)
        })
        .collect()
}

fn blob_centers(n: usize, dim: usize, seed: u64) -> Vec<Point> {
    let mut rng = SmallRng::seed_from_u64(seed.wrapping_mul(0x2545F4914F6CDD1D));
    (0..n).map(|_| (0..dim).map(|_| rng.gen_f64()).collect()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cloud_has_requested_shape() {
        let spec = KmeansSpec::small();
        let pts = point_cloud(&spec);
        assert_eq!(pts.len() as u64, spec.points);
        assert!(pts.iter().all(|p| p.len() == spec.dim));
    }

    #[test]
    fn cloud_is_deterministic() {
        let spec = KmeansSpec::small();
        assert_eq!(point_cloud(&spec), point_cloud(&spec));
    }

    #[test]
    fn configs_have_k_centroids_each() {
        let spec = KmeansSpec::small();
        let configs = initial_centroid_configs(&spec, 5);
        assert_eq!(configs.len(), 5);
        for (id, cs) in &configs {
            assert!(*id < 5);
            assert_eq!(cs.len(), spec.k);
            assert!(cs.iter().all(|c| c.len() == spec.dim));
        }
    }

    #[test]
    fn different_configs_differ() {
        let spec = KmeansSpec::small();
        let configs = initial_centroid_configs(&spec, 2);
        assert_ne!(configs[0].1, configs[1].1);
    }

    #[test]
    fn points_cluster_around_blob_centers() {
        let spec = KmeansSpec { spread: 0.01, ..KmeansSpec::small() };
        let pts = point_cloud(&spec);
        let centers = blob_centers(spec.true_clusters, spec.dim, spec.seed);
        // Every point is near SOME blob center.
        for p in pts.iter().take(200) {
            let min_d2: f64 = centers
                .iter()
                .map(|c| c.iter().zip(p).map(|(a, b)| (a - b) * (a - b)).sum::<f64>())
                .fold(f64::INFINITY, f64::min);
            assert!(min_d2 < 0.01, "point too far from all blob centers: {min_d2}");
        }
    }
}
