//! # matryoshka-datagen
//!
//! Deterministic dataset generators for the Matryoshka evaluation
//! (paper Sec. 9.1): per-day web-visit logs for Bounce Rate, grouped random
//! graphs for per-group PageRank, component-structured graphs for Average
//! Distances, and point clouds with initial centroid configurations for
//! K-means. Grouping keys can be drawn uniformly or from a Zipf
//! distribution (the skew experiment, Sec. 9.5).
//!
//! All generators take an explicit seed and are deterministic across runs
//! and platforms.

#![warn(missing_docs)]

mod graphs;
mod points;
pub mod rng;
mod visits;
mod zipf;

pub use graphs::{component_graph, grouped_edges, ComponentGraphSpec, GroupedGraphSpec};
pub use points::{initial_centroid_configs, point_cloud, KmeansSpec, Point};
pub use rng::SmallRng;
pub use visits::{visit_log, VisitSpec};
pub use zipf::ZipfSampler;

/// Distribution of grouping keys.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum KeyDist {
    /// Keys drawn uniformly: groups have (nearly) equal sizes.
    Uniform,
    /// Keys drawn from a Zipf distribution with the given exponent: a few
    /// large groups and many small groups (Sec. 9.5 uses this for the skew
    /// experiment).
    Zipf(f64),
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn key_dist_is_copy_and_comparable() {
        let a = KeyDist::Zipf(1.0);
        let b = a;
        assert_eq!(a, b);
        assert_ne!(a, KeyDist::Uniform);
    }
}
