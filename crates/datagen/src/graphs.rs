//! Graph generation: grouped edge lists for per-group PageRank
//! (paper Sec. 9.1) and component-structured graphs for Average Distances
//! (Sec. 2.2).

use crate::rng::SmallRng;

use crate::zipf::ZipfSampler;
use crate::KeyDist;

/// Shape of a grouped random graph (many small graphs, one per group).
#[derive(Debug, Clone)]
pub struct GroupedGraphSpec {
    /// Total number of edges across all groups (held constant in the
    /// weak-scaling experiments while `groups` varies).
    pub total_edges: u64,
    /// Number of groups = number of inner PageRank computations.
    pub groups: u32,
    /// Vertices per *average-sized* group; per-group vertex counts scale
    /// with the group's edge share.
    pub vertices_per_group: u32,
    /// Group-size distribution.
    pub key_dist: KeyDist,
    /// RNG seed.
    pub seed: u64,
}

impl GroupedGraphSpec {
    /// A small default suitable for tests.
    pub fn small(groups: u32) -> Self {
        GroupedGraphSpec {
            total_edges: 8_000,
            groups,
            vertices_per_group: 50,
            key_dist: KeyDist::Uniform,
            seed: 7,
        }
    }
}

/// Generate `(group, (src, dst))` edges. Vertex ids are disjoint across
/// groups (the group id is encoded in the vertex id) and every group's
/// vertex set is connected enough for PageRank to be interesting: vertex `i`
/// always links to vertex `(i+1) % n` (a ring), with the remaining edges
/// random.
pub fn grouped_edges(spec: &GroupedGraphSpec) -> Vec<(u32, (u64, u64))> {
    assert!(spec.groups > 0);
    let mut rng = SmallRng::seed_from_u64(spec.seed);
    // Decide each group's edge budget.
    let budgets: Vec<u64> = match spec.key_dist {
        KeyDist::Uniform => {
            let per = spec.total_edges / spec.groups as u64;
            (0..spec.groups).map(|_| per.max(1)).collect()
        }
        KeyDist::Zipf(s) => {
            let z = ZipfSampler::new(spec.groups as usize, s);
            (0..spec.groups as usize)
                .map(|k| ((spec.total_edges as f64 * z.pmf(k)) as u64).max(1))
                .collect()
        }
    };
    let mut out = Vec::with_capacity(spec.total_edges as usize);
    for (g, &budget) in budgets.iter().enumerate() {
        let g = g as u32;
        // Vertex count proportional to the group's edge share, at least 2.
        let avg_budget = (spec.total_edges / spec.groups as u64).max(1);
        let n = ((spec.vertices_per_group as u64 * budget) / avg_budget).clamp(2, budget.max(2));
        // Ring for connectivity.
        for i in 0..n.min(budget) {
            out.push((g, (vid(g, i), vid(g, (i + 1) % n))));
        }
        // Random extra edges.
        for _ in n.min(budget)..budget {
            let s = rng.gen_range(0..n);
            let d = rng.gen_range(0..n);
            out.push((g, (vid(g, s), vid(g, d))));
        }
    }
    out
}

fn vid(group: u32, v: u64) -> u64 {
    ((group as u64) << 32) | v
}

/// Shape of a multi-component undirected graph for Average Distances.
#[derive(Debug, Clone)]
pub struct ComponentGraphSpec {
    /// Number of connected components.
    pub components: u32,
    /// Vertices per component.
    pub vertices_per_component: u32,
    /// Extra random edges per component on top of the spanning ring.
    pub extra_edges_per_component: u32,
    /// RNG seed.
    pub seed: u64,
}

impl ComponentGraphSpec {
    /// A small default suitable for tests.
    pub fn small(components: u32) -> Self {
        ComponentGraphSpec {
            components,
            vertices_per_component: 12,
            extra_edges_per_component: 6,
            seed: 13,
        }
    }
}

/// Generate undirected edges `(u, v)` of a graph whose connected components
/// are known by construction: component `c` owns the vertex ids
/// `c << 32 | i`. Each component is a ring plus random chords, so it is
/// connected and has nontrivial shortest-path structure.
pub fn component_graph(spec: &ComponentGraphSpec) -> Vec<(u64, u64)> {
    let mut rng = SmallRng::seed_from_u64(spec.seed);
    let n = spec.vertices_per_component as u64;
    assert!(n >= 2, "components need at least two vertices");
    let mut out = Vec::new();
    for c in 0..spec.components {
        for i in 0..n {
            out.push((vid(c, i), vid(c, (i + 1) % n)));
        }
        for _ in 0..spec.extra_edges_per_component {
            let a = rng.gen_range(0..n);
            let b = rng.gen_range(0..n);
            if a != b {
                out.push((vid(c, a), vid(c, b)));
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn grouped_edges_respect_total_and_groups() {
        let spec = GroupedGraphSpec::small(8);
        let edges = grouped_edges(&spec);
        assert_eq!(edges.len() as u64, spec.total_edges);
        let groups: HashSet<u32> = edges.iter().map(|(g, _)| *g).collect();
        assert_eq!(groups.len(), 8);
    }

    #[test]
    fn vertices_are_group_disjoint() {
        let edges = grouped_edges(&GroupedGraphSpec::small(4));
        for (g, (s, d)) in &edges {
            assert_eq!((s >> 32) as u32, *g);
            assert_eq!((d >> 32) as u32, *g);
        }
    }

    #[test]
    fn zipf_group_budgets_are_skewed() {
        let spec = GroupedGraphSpec {
            key_dist: KeyDist::Zipf(1.0),
            total_edges: 50_000,
            ..GroupedGraphSpec::small(64)
        };
        let edges = grouped_edges(&spec);
        let mut counts = vec![0u64; 64];
        for (g, _) in &edges {
            counts[*g as usize] += 1;
        }
        assert!(counts[0] > 20 * counts[63].max(1));
    }

    #[test]
    fn grouped_edges_deterministic() {
        let spec = GroupedGraphSpec::small(3);
        assert_eq!(grouped_edges(&spec), grouped_edges(&spec));
    }

    #[test]
    fn component_graph_components_are_disjoint_and_connected() {
        let spec = ComponentGraphSpec::small(5);
        let edges = component_graph(&spec);
        // Disjoint: edges never cross component boundaries.
        for (u, v) in &edges {
            assert_eq!(u >> 32, v >> 32);
        }
        // Connected: BFS from vertex 0 of component 0 reaches all of it.
        let n = spec.vertices_per_component as u64;
        let mut adj: std::collections::HashMap<u64, Vec<u64>> = Default::default();
        for (u, v) in &edges {
            adj.entry(*u).or_default().push(*v);
            adj.entry(*v).or_default().push(*u);
        }
        let mut seen = HashSet::new();
        let mut stack = vec![0u64];
        while let Some(x) = stack.pop() {
            if seen.insert(x) {
                for y in adj.get(&x).into_iter().flatten() {
                    stack.push(*y);
                }
            }
        }
        assert_eq!(seen.len() as u64, n);
    }
}
