//! Visit-log generation for the Bounce Rate task (paper Sec. 2.1, 9.4).

use crate::rng::SmallRng;

use crate::zipf::ZipfSampler;
use crate::KeyDist;

/// Shape of a generated visit log.
#[derive(Debug, Clone)]
pub struct VisitSpec {
    /// Total number of visit records.
    pub visits: u64,
    /// Number of grouping keys (days, or countries): the number of inner
    /// computations in the weak-scaling experiments.
    pub groups: u32,
    /// Distinct visitors per group, controlling the bounce rate: fewer
    /// visitors per visit means fewer bounces.
    pub visitors_per_group: u64,
    /// Fraction of visitors that are "bouncers" (visit exactly once).
    pub bounce_fraction: f64,
    /// Key distribution (uniform for the main experiments, Zipf for
    /// Sec. 9.5).
    pub key_dist: KeyDist,
    /// RNG seed.
    pub seed: u64,
}

impl VisitSpec {
    /// A small default suitable for tests.
    pub fn small(groups: u32) -> Self {
        VisitSpec {
            visits: 10_000,
            groups,
            visitors_per_group: 200,
            bounce_fraction: 0.3,
            key_dist: KeyDist::Uniform,
            seed: 42,
        }
    }
}

/// Generate `(day, ip)` visit records.
///
/// Visitor ids are disjoint across groups (visitor `ip` encodes its group),
/// so per-group bounce rates are meaningful. Bouncer visitors contribute
/// exactly one visit; the remaining visits are spread over the non-bouncer
/// visitors of the group.
pub fn visit_log(spec: &VisitSpec) -> Vec<(u32, u64)> {
    assert!(spec.groups > 0, "need at least one group");
    let mut rng = SmallRng::seed_from_u64(spec.seed);
    let zipf = match spec.key_dist {
        KeyDist::Uniform => None,
        KeyDist::Zipf(s) => Some(ZipfSampler::new(spec.groups as usize, s)),
    };
    let bouncers = ((spec.visitors_per_group as f64) * spec.bounce_fraction) as u64;
    let mut out = Vec::with_capacity(spec.visits as usize);
    // First, one visit per bouncer per group: these are the bounces.
    for g in 0..spec.groups {
        for b in 0..bouncers {
            out.push((g, visitor_id(g, b)));
        }
    }
    // Then fill with repeat visits from non-bouncers, keys per the
    // distribution.
    while (out.len() as u64) < spec.visits {
        let g = match &zipf {
            Some(z) => z.sample(&mut rng) as u32,
            None => rng.gen_range_u32(0..spec.groups),
        };
        let v = rng.gen_range(bouncers..spec.visitors_per_group.max(bouncers + 1));
        out.push((g, visitor_id(g, v)));
        // Non-bouncers must visit at least twice; add a paired visit with
        // 50% probability to vary counts while keeping them >= 2 likely.
        if rng.gen_bool(0.5) && (out.len() as u64) < spec.visits {
            out.push((g, visitor_id(g, v)));
        }
    }
    out
}

fn visitor_id(group: u32, visitor: u64) -> u64 {
    ((group as u64) << 32) | visitor
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::{HashMap, HashSet};

    #[test]
    fn generates_requested_count_and_groups() {
        let spec = VisitSpec::small(8);
        let log = visit_log(&spec);
        assert_eq!(log.len() as u64, spec.visits);
        let groups: HashSet<u32> = log.iter().map(|(g, _)| *g).collect();
        assert_eq!(groups.len(), 8);
        assert!(groups.iter().all(|g| *g < 8));
    }

    #[test]
    fn deterministic_per_seed() {
        let spec = VisitSpec::small(4);
        assert_eq!(visit_log(&spec), visit_log(&spec));
        let other = VisitSpec { seed: 43, ..spec };
        assert_ne!(visit_log(&spec), visit_log(&other));
    }

    #[test]
    fn bouncers_visit_exactly_once() {
        let spec = VisitSpec::small(4);
        let log = visit_log(&spec);
        let mut counts: HashMap<u64, u64> = HashMap::new();
        for (_, ip) in &log {
            *counts.entry(*ip).or_insert(0) += 1;
        }
        let bouncers = ((spec.visitors_per_group as f64) * spec.bounce_fraction) as u64;
        for g in 0..4u32 {
            for b in 0..bouncers {
                assert_eq!(counts[&visitor_id(g, b)], 1, "bouncer must visit once");
            }
        }
    }

    #[test]
    fn zipf_keys_are_skewed() {
        let spec = VisitSpec {
            visits: 50_000,
            groups: 64,
            key_dist: KeyDist::Zipf(1.0),
            ..VisitSpec::small(64)
        };
        let log = visit_log(&spec);
        let mut counts = vec![0u64; 64];
        for (g, _) in &log {
            counts[*g as usize] += 1;
        }
        let max = *counts.iter().max().unwrap();
        let min = *counts.iter().min().unwrap();
        assert!(max > 10 * min.max(1), "Zipf keys should be heavily skewed");
    }

    #[test]
    fn visitor_ids_disjoint_across_groups() {
        let log = visit_log(&VisitSpec::small(3));
        for (g, ip) in &log {
            assert_eq!((ip >> 32) as u32, *g);
        }
    }
}
