//! Zipf-distributed key sampling (for the skew experiment, paper Sec. 9.5).

use crate::rng::SmallRng;

/// Samples keys `0..n` with probability proportional to `1 / (k+1)^s`.
///
/// Implemented as a precomputed cumulative table + binary search, which is
/// exact and fast for the group-count ranges the experiments use (up to a
/// few thousand keys).
#[derive(Debug, Clone)]
pub struct ZipfSampler {
    cumulative: Vec<f64>,
}

impl ZipfSampler {
    /// Build a sampler over `n` keys with exponent `s` (`s = 0` degenerates
    /// to uniform).
    pub fn new(n: usize, s: f64) -> Self {
        assert!(n > 0, "ZipfSampler needs at least one key");
        let mut cumulative = Vec::with_capacity(n);
        let mut total = 0.0;
        for k in 0..n {
            total += 1.0 / ((k + 1) as f64).powf(s);
            cumulative.push(total);
        }
        for c in &mut cumulative {
            *c /= total;
        }
        // Guard against floating-point shortfall at the end.
        if let Some(last) = cumulative.last_mut() {
            *last = 1.0;
        }
        ZipfSampler { cumulative }
    }

    /// Number of keys.
    pub fn len(&self) -> usize {
        self.cumulative.len()
    }

    /// True if the sampler has exactly one key.
    pub fn is_empty(&self) -> bool {
        false // constructor enforces n > 0
    }

    /// Draw one key.
    pub fn sample(&self, rng: &mut SmallRng) -> usize {
        let u: f64 = rng.gen_f64();
        self.cumulative.partition_point(|&c| c < u).min(self.cumulative.len() - 1)
    }

    /// Probability mass of key `k`.
    pub fn pmf(&self, k: usize) -> f64 {
        if k == 0 {
            self.cumulative[0]
        } else {
            self.cumulative[k] - self.cumulative[k - 1]
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pmf_sums_to_one() {
        let z = ZipfSampler::new(100, 1.0);
        let total: f64 = (0..100).map(|k| z.pmf(k)).sum();
        assert!((total - 1.0).abs() < 1e-9);
    }

    #[test]
    fn first_key_dominates_under_skew() {
        let z = ZipfSampler::new(1024, 1.0);
        assert!(z.pmf(0) > 0.1, "head key should carry >10% of mass");
        assert!(z.pmf(0) > 100.0 * z.pmf(1023));
    }

    #[test]
    fn samples_follow_expected_head_mass() {
        let z = ZipfSampler::new(64, 1.0);
        let mut rng = SmallRng::seed_from_u64(7);
        let n = 100_000;
        let head = (0..n).filter(|_| z.sample(&mut rng) == 0).count();
        let expected = z.pmf(0) * n as f64;
        assert!((head as f64 - expected).abs() < 0.05 * n as f64);
    }

    #[test]
    fn zero_exponent_is_uniform() {
        let z = ZipfSampler::new(10, 0.0);
        for k in 0..10 {
            assert!((z.pmf(k) - 0.1).abs() < 1e-9);
        }
    }

    #[test]
    fn sampling_is_deterministic_per_seed() {
        let z = ZipfSampler::new(32, 1.2);
        let a: Vec<usize> =
            (0..100).scan(SmallRng::seed_from_u64(3), |r, _| Some(z.sample(r))).collect();
        let b: Vec<usize> =
            (0..100).scan(SmallRng::seed_from_u64(3), |r, _| Some(z.sample(r))).collect();
        assert_eq!(a, b);
    }

    #[test]
    fn samples_stay_in_range() {
        let z = ZipfSampler::new(5, 2.0);
        let mut rng = SmallRng::seed_from_u64(11);
        for _ in 0..10_000 {
            assert!(z.sample(&mut rng) < 5);
        }
    }
}
