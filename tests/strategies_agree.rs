//! Cross-crate integration tests: every execution strategy of every paper
//! workload computes the same answer (the correctness theorem of Sec. 7,
//! checked end-to-end), and the *cost structure* matches the paper's
//! analysis (Matryoshka's job count is independent of the number of inner
//! computations; the workarounds' costs are not).

use std::sync::Arc;

use matryoshka::core::MatryoshkaConfig;
use matryoshka::datagen::*;
use matryoshka::engine::{ClusterConfig, Engine};
use matryoshka::tasks::seq::{KmeansParams, PageRankParams};
use matryoshka::tasks::{avg_distances, bounce_rate, kmeans, pagerank};

fn engine() -> Engine {
    Engine::new(ClusterConfig::local_test())
}

#[test]
fn bounce_rate_all_strategies_agree_at_scale() {
    let log = visit_log(&VisitSpec {
        visits: 40_000,
        groups: 48,
        visitors_per_group: 300,
        bounce_fraction: 0.25,
        key_dist: KeyDist::Uniform,
        seed: 11,
    });
    let oracle = bounce_rate::reference(&log);
    let e = engine();
    let bag = e.parallelize(log.clone(), 8);
    let m = bounce_rate::matryoshka(&e, &bag, MatryoshkaConfig::optimized()).unwrap();
    let o = bounce_rate::outer_parallel(&e, &bag).unwrap();
    let i = bounce_rate::inner_parallel(&e, &bounce_rate::split_by_group(&log), 8.0).unwrap();
    for other in [&m, &o, &i] {
        assert_eq!(other.len(), oracle.len());
        for ((d1, r1), (d2, r2)) in other.iter().zip(&oracle) {
            assert_eq!(d1, d2);
            assert!((r1 - r2).abs() < 1e-12);
        }
    }
}

#[test]
fn bounce_rate_under_skew_agrees() {
    let log = visit_log(&VisitSpec {
        visits: 30_000,
        groups: 64,
        visitors_per_group: 120,
        bounce_fraction: 0.4,
        key_dist: KeyDist::Zipf(1.0),
        seed: 12,
    });
    let oracle = bounce_rate::reference(&log);
    let e = engine();
    let bag = e.parallelize(log.clone(), 8);
    let m = bounce_rate::matryoshka(&e, &bag, MatryoshkaConfig::optimized()).unwrap();
    assert_eq!(m.len(), oracle.len());
    for ((d1, r1), (d2, r2)) in m.iter().zip(&oracle) {
        assert_eq!(d1, d2);
        assert!((r1 - r2).abs() < 1e-12);
    }
}

#[test]
fn pagerank_strategies_agree_and_matryoshka_jobs_are_flat() {
    let params = PageRankParams { damping: 0.85, epsilon: 1e-3, max_iterations: 15 };
    let jobs_at = |groups: u32| {
        let edges = grouped_edges(&GroupedGraphSpec {
            total_edges: 3_000,
            groups,
            vertices_per_group: (300 / groups).max(3),
            key_dist: KeyDist::Uniform,
            seed: 21,
        });
        let oracle = pagerank::reference(&edges, &params);
        let e = engine();
        let bag = e.parallelize(edges.clone(), 6);
        let m =
            pagerank::matryoshka(&e, &bag, &params, MatryoshkaConfig::optimized(), 0.0).unwrap();
        assert_eq!(m.len(), oracle.len());
        for ((g1, (v1, r1)), (g2, (v2, r2))) in m.iter().zip(&oracle) {
            assert_eq!((g1, v1), (g2, v2));
            assert!((r1 - r2).abs() < 1e-4, "group {g1} vertex {v1}: {r1} vs {r2}");
        }
        e.stats().jobs
    };
    let j4 = jobs_at(4);
    let j32 = jobs_at(32);
    // Iteration counts can vary a little; an 8x group increase must not
    // show up in the job count.
    assert!(j32 < j4 * 3, "matryoshka jobs must not scale with groups: {j4} vs {j32}");
}

#[test]
fn inner_parallel_job_count_is_linear_in_groups() {
    let params = PageRankParams { damping: 0.85, epsilon: 1e-2, max_iterations: 5 };
    let jobs_at = |groups: u32| {
        let edges = grouped_edges(&GroupedGraphSpec {
            total_edges: 1_200,
            groups,
            vertices_per_group: 8,
            key_dist: KeyDist::Uniform,
            seed: 23,
        });
        let e = engine();
        let split = pagerank::split_by_group(&edges);
        pagerank::inner_parallel(&e, &split, &params, 8.0).unwrap();
        e.stats().jobs
    };
    let j4 = jobs_at(4);
    let j16 = jobs_at(16);
    assert!(
        j16 as f64 >= j4 as f64 * 2.5,
        "inner-parallel jobs must grow with groups: {j4} vs {j16}"
    );
}

#[test]
fn kmeans_shared_and_grouped_variants_agree_with_reference() {
    let spec = KmeansSpec { points: 3_000, dim: 3, true_clusters: 5, k: 5, spread: 0.03, seed: 31 };
    let points = point_cloud(&spec);
    let configs = initial_centroid_configs(&spec, 6);
    let params = KmeansParams::default();

    // Shared-points variant (half-lifted closure).
    let oracle = kmeans::reference(&configs, &points, &params);
    let e = engine();
    let cb = e.parallelize(configs.clone(), 2);
    let pb = e.parallelize(points.clone(), 6);
    let m = kmeans::matryoshka(&e, &cb, &pb, &params, MatryoshkaConfig::optimized()).unwrap();
    for ((i1, (_, c1)), (i2, (_, c2))) in m.iter().zip(&oracle) {
        assert_eq!(i1, i2);
        assert!((c1 - c2).abs() / c1.max(1e-9) < 1e-6);
    }

    // Grouped-samples variant (mapWithClosure tag join).
    let samples: Vec<(u32, Point)> =
        points.iter().enumerate().map(|(i, p)| ((i % 6) as u32, p.clone())).collect();
    let split = kmeans::split_samples(&samples);
    let oracle_g = kmeans::reference_grouped(&configs, &split, &params);
    let e2 = engine();
    let cb2 = e2.parallelize(configs.clone(), 2);
    let sb = e2.parallelize(samples, 6);
    let mg =
        kmeans::matryoshka_grouped(&e2, &cb2, &sb, &params, MatryoshkaConfig::optimized()).unwrap();
    for ((i1, (_, c1)), (i2, (_, c2))) in mg.iter().zip(&oracle_g) {
        assert_eq!(i1, i2);
        assert!((c1 - c2).abs() / c1.max(1e-9) < 1e-6);
    }
}

#[test]
fn avg_distances_three_levels_agree_at_scale() {
    let graph = component_graph(&ComponentGraphSpec {
        components: 6,
        vertices_per_component: 14,
        extra_edges_per_component: 8,
        seed: 41,
    });
    let oracle = avg_distances::reference(&graph);
    let e = engine();
    let bag = e.parallelize(graph.clone(), 6);
    let m = avg_distances::matryoshka(&e, &bag, MatryoshkaConfig::optimized(), 64).unwrap();
    let o = avg_distances::outer_parallel(&e, &bag).unwrap();
    for got in [&m, &o] {
        assert_eq!(got.len(), oracle.len());
        for ((c1, d1), (c2, d2)) in got.iter().zip(&oracle) {
            assert_eq!(c1, c2);
            assert!((d1 - d2).abs() < 1e-9);
        }
    }
}

#[test]
fn outer_parallel_oom_is_deterministic_and_only_under_pressure() {
    // The same workload OOMs on a small-memory cluster and succeeds on a
    // large one — the simulated memory model, not chance.
    let log = visit_log(&VisitSpec {
        visits: 20_000,
        groups: 4,
        visitors_per_group: 500,
        bounce_fraction: 0.3,
        key_dist: KeyDist::Uniform,
        seed: 51,
    });
    let record_bytes = (48u64 * (1 << 30)) as f64 / 20_000.0;

    let small = Engine::new(ClusterConfig::paper_small_cluster());
    let bag = small.parallelize_with_bytes(log.clone(), 1200, record_bytes);
    assert!(bounce_rate::outer_parallel(&small, &bag).is_err(), "48 GB / 4 groups must OOM");

    let e = engine(); // tiny data volume: must succeed
    let bag2 = e.parallelize(log.clone(), 8);
    assert!(bounce_rate::outer_parallel(&e, &bag2).is_ok());
}

#[test]
fn forced_optimizer_choices_never_change_results() {
    use matryoshka::core::{CrossChoice, JoinChoice};
    let spec = KmeansSpec { points: 800, dim: 2, true_clusters: 3, k: 3, spread: 0.05, seed: 61 };
    let points = point_cloud(&spec);
    let configs = initial_centroid_configs(&spec, 3);
    let params = KmeansParams::default();
    let oracle = kmeans::reference(&configs, &points, &params);
    for join in [JoinChoice::Auto, JoinChoice::ForceBroadcast, JoinChoice::ForceRepartition] {
        for cross in
            [CrossChoice::Auto, CrossChoice::ForceBroadcastScalar, CrossChoice::ForceBroadcastBag]
        {
            let cfg = MatryoshkaConfig { tag_join: join, cross, ..MatryoshkaConfig::optimized() };
            let e = engine();
            let cb = e.parallelize(configs.clone(), 1);
            let pb = e.parallelize(points.clone(), 4);
            let m = kmeans::matryoshka(&e, &cb, &pb, &params, cfg).unwrap();
            for ((i1, (_, c1)), (i2, (_, c2))) in m.iter().zip(&oracle) {
                assert_eq!(i1, i2);
                assert!((c1 - c2).abs() / c1.max(1e-9) < 1e-6, "{join:?}/{cross:?}");
            }
        }
    }
}

#[test]
fn outer_parallel_kmeans_matches_with_arc_shared_points() {
    let spec = KmeansSpec { points: 1_000, dim: 2, true_clusters: 4, k: 4, spread: 0.04, seed: 71 };
    let points = point_cloud(&spec);
    let configs = initial_centroid_configs(&spec, 4);
    let params = KmeansParams::default();
    let oracle = kmeans::reference(&configs, &points, &params);
    let e = engine();
    let o = kmeans::outer_parallel(&e, &configs, Arc::new(points), 16.0, &params).unwrap();
    assert_eq!(o, oracle);
}
