//! Property-based tests of the flattening's correctness invariants
//! (paper Sec. 7): for arbitrary nested data, the lifted operations must
//! preserve the semantics of the original per-group operations — the
//! isomorphism `m(op(x)) = op'(m(x))` checked on randomly generated inputs.

use std::collections::HashMap;

use proptest::prelude::*;

use matryoshka::core::{
    group_by_key_into_nested_bag, lifted_while, InnerScalar, LiftingContext, MatryoshkaConfig,
};
use matryoshka::engine::{ClusterConfig, Engine};
use matryoshka::tasks::bounce_rate;

fn engine() -> Engine {
    Engine::new(ClusterConfig::local_test())
}

/// Arbitrary tagged records: small key space so groups collide, values in a
/// small range so aggregations are interesting.
fn tagged_records() -> impl Strategy<Value = Vec<(u32, i64)>> {
    proptest::collection::vec(((0u32..8), (-20i64..20)), 0..120)
}

/// Per-group sequential oracle for a map/filter/aggregate pipeline.
fn oracle_pipeline(records: &[(u32, i64)]) -> Vec<(u32, (i64, u64))> {
    let mut groups: HashMap<u32, Vec<i64>> = HashMap::new();
    for &(k, v) in records {
        groups.entry(k).or_default().push(v);
    }
    let mut out: Vec<(u32, (i64, u64))> = groups
        .into_iter()
        .map(|(k, vs)| {
            let mapped: Vec<i64> = vs.iter().map(|v| v * 3 + 1).filter(|v| v % 2 != 0).collect();
            let sum: i64 = mapped.iter().sum();
            (k, (sum, mapped.len() as u64))
        })
        .collect();
    out.sort_by_key(|(k, _)| *k);
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// m(op(x)) = op'(m(x)) for a map+filter+fold+count pipeline over
    /// arbitrary nested data.
    #[test]
    fn lifted_pipeline_matches_per_group_oracle(records in tagged_records()) {
        let expect = oracle_pipeline(&records);
        let e = engine();
        let bag = e.parallelize(records.clone(), 5);
        let nested = group_by_key_into_nested_bag(&e, &bag, MatryoshkaConfig::optimized()).unwrap();
        let result = nested.map_with_lifted_udf(|_k, group| {
            let mapped = group.map(|v| v * 3 + 1).filter(|v| v % 2 != 0);
            let sum = mapped.fold(0i64, |a, v| a + v, |a, b| a + b);
            let count = mapped.count();
            sum.zip_with(&count, |s, c| (*s, *c))
        });
        let mut got = result.collect().unwrap();
        got.sort_by_key(|(k, _)| *k);
        prop_assert_eq!(got, expect);
    }

    /// Lifted distinct+count equals per-group set cardinality.
    #[test]
    fn lifted_distinct_count_matches(records in tagged_records()) {
        let mut expect: Vec<(u32, u64)> = {
            let mut m: HashMap<u32, std::collections::HashSet<i64>> = HashMap::new();
            for &(k, v) in &records {
                m.entry(k).or_default().insert(v);
            }
            m.into_iter().map(|(k, s)| (k, s.len() as u64)).collect()
        };
        expect.sort_by_key(|(k, _)| *k);
        let e = engine();
        let bag = e.parallelize(records.clone(), 4);
        let nested = group_by_key_into_nested_bag(&e, &bag, MatryoshkaConfig::optimized()).unwrap();
        let mut got = nested
            .map_with_lifted_udf(|_k, group| group.distinct().count())
            .collect()
            .unwrap();
        got.sort_by_key(|(k, _)| *k);
        prop_assert_eq!(got, expect);
    }

    /// Lifted reduce_by_key never merges across tags, for arbitrary data.
    #[test]
    fn lifted_reduce_by_key_respects_tags(records in proptest::collection::vec(((0u32..5), (0u32..4), (1i64..10)), 0..100)) {
        let mut expect: HashMap<(u32, u32), i64> = HashMap::new();
        for &(t, k, v) in &records {
            *expect.entry((t, k)).or_insert(0) += v;
        }
        let e = engine();
        let pairs: Vec<(u32, (u32, i64))> = records.iter().map(|&(t, k, v)| (t, (k, v))).collect();
        let bag = e.parallelize(pairs, 4);
        let nested = group_by_key_into_nested_bag(&e, &bag, MatryoshkaConfig::optimized()).unwrap();
        let got = nested
            .map_with_lifted_udf(|_t, group| group.reduce_by_key(|a, b| a + b))
            .collect()
            .unwrap();
        prop_assert_eq!(got.len(), expect.len());
        for (t, (k, v)) in got {
            prop_assert_eq!(expect.get(&(t, k)), Some(&v), "tag {} key {}", t, k);
        }
    }

    /// The lifted do-while retires every tag after exactly its own number
    /// of iterations, for arbitrary per-tag iteration counts (Listing 4's
    /// P1-P3 as a property).
    #[test]
    fn lifted_while_matches_per_tag_loops(counts in proptest::collection::vec(0i64..12, 1..24)) {
        let e = engine();
        let tags: Vec<u64> = (0..counts.len() as u64).collect();
        let ctx = LiftingContext::new(
            e.clone(),
            e.parallelize(tags.clone(), 3),
            tags.len() as u64,
            MatryoshkaConfig::optimized(),
        );
        let init = InnerScalar::from_repr(
            e.parallelize(tags.iter().map(|&t| (t, (counts[t as usize], 0i64))).collect(), 3),
            ctx,
        );
        let out = lifted_while(
            &init,
            |s: &InnerScalar<u64, (i64, i64)>| {
                let next = s.map(|(n, steps)| (n - 1, steps + 1));
                let cond = next.map(|(n, _)| *n > 0);
                Ok((next, cond))
            },
            None,
        )
        .unwrap();
        let mut got = out.collect().unwrap();
        got.sort_by_key(|(t, _)| *t);
        for (t, (_, steps)) in got {
            // A do-while runs at least once.
            let expect = counts[t as usize].max(1);
            prop_assert_eq!(steps, expect, "tag {}", t);
        }
    }

    /// Matryoshka bounce rate equals the sequential oracle for arbitrary
    /// visit logs (the end-to-end isomorphism on the paper's Listing 1).
    #[test]
    fn bounce_rate_is_correct_on_arbitrary_logs(
        visits in proptest::collection::vec(((0u32..6), (0u64..30)), 1..150)
    ) {
        let e = engine();
        let oracle = bounce_rate::reference(&visits);
        let bag = e.parallelize(visits.clone(), 4);
        let got = bounce_rate::matryoshka(&e, &bag, MatryoshkaConfig::optimized()).unwrap();
        prop_assert_eq!(got.len(), oracle.len());
        for ((d1, r1), (d2, r2)) in got.iter().zip(&oracle) {
            prop_assert_eq!(d1, d2);
            prop_assert!((r1 - r2).abs() < 1e-12);
        }
    }

    /// collect_nested is the inverse isomorphism m^-1: grouping then
    /// reconstructing yields exactly the driver-side grouping.
    #[test]
    fn nested_bag_roundtrip(records in tagged_records()) {
        let e = engine();
        let bag = e.parallelize(records.clone(), 4);
        let nested = group_by_key_into_nested_bag(&e, &bag, MatryoshkaConfig::optimized()).unwrap();
        let mut got = nested.collect_nested().unwrap();
        got.iter_mut().for_each(|(_, vs)| vs.sort());
        got.sort_by_key(|(k, _)| *k);
        let mut expect: HashMap<u32, Vec<i64>> = HashMap::new();
        for &(k, v) in &records {
            expect.entry(k).or_default().push(v);
        }
        let mut expect: Vec<(u32, Vec<i64>)> = expect
            .into_iter()
            .map(|(k, mut vs)| {
                vs.sort();
                (k, vs)
            })
            .collect();
        expect.sort_by_key(|(k, _)| *k);
        prop_assert_eq!(got, expect);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The IR's pure evaluator agrees with the lifted scalar pipeline: a
    /// random arithmetic expression over a per-group count computes the
    /// same value lifted as it does sequentially.
    #[test]
    fn ir_lifted_scalars_match_pure_evaluation(
        records in proptest::collection::vec(((0i64..4), (0i64..5)), 1..40),
        mul in 1i64..5,
        add in -5i64..5,
    ) {
        use matryoshka::ir::ast::{BinOp, Expr, Lambda};
        use matryoshka::ir::{parsing_phase, Dialect, Lowering, RtVal, Value};

        let program = Expr::Map(
            Box::new(Expr::GroupByKey(Box::new(Expr::Source("xs".into())))),
            Lambda::new(
                "g",
                Expr::Tuple(vec![
                    Expr::proj(Expr::var("g"), 0),
                    Expr::bin(
                        BinOp::Add,
                        Expr::bin(
                            BinOp::Mul,
                            Expr::Count(Box::new(Expr::proj(Expr::var("g"), 1))),
                            Expr::long(mul),
                        ),
                        Expr::long(add),
                    ),
                ]),
            ),
        );
        let parsed = parsing_phase(&program, &["xs"], Dialect::Matryoshka).unwrap();
        let e = engine();
        let xs = e.parallelize(
            records.iter().map(|&(k, v)| Value::tuple(vec![Value::Long(k), Value::Long(v)])).collect(),
            3,
        );
        let lowering = Lowering::new(e.clone(), MatryoshkaConfig::optimized());
        let out = lowering.run(&parsed, &HashMap::from([("xs".to_string(), xs)])).unwrap();
        let mut got = match out {
            RtVal::Bag(b) => b.collect().unwrap(),
            other => panic!("expected bag, got {other:?}"),
        };
        got.sort();
        let mut expect: HashMap<i64, i64> = HashMap::new();
        for &(k, _) in &records {
            *expect.entry(k).or_insert(0) += 1;
        }
        let mut expect: Vec<Value> = expect
            .into_iter()
            .map(|(k, n)| Value::tuple(vec![Value::Long(k), Value::Long(n * mul + add)]))
            .collect();
        expect.sort();
        prop_assert_eq!(got, expect);
    }
}
