//! Property-style tests of the flattening's correctness invariants
//! (paper Sec. 7): for pseudo-randomly generated nested data, the lifted
//! operations must preserve the semantics of the original per-group
//! operations — the isomorphism `m(op(x)) = op'(m(x))` checked on many
//! seeded inputs.
//!
//! Inputs come from a deterministic SplitMix64 stream so failures are
//! reproducible by seed.

use std::collections::HashMap;

use matryoshka::core::{
    group_by_key_into_nested_bag, lifted_while, InnerScalar, LiftingContext, MatryoshkaConfig,
};
use matryoshka::engine::{ClusterConfig, Engine};
use matryoshka::tasks::bounce_rate;

fn engine() -> Engine {
    Engine::new(ClusterConfig::local_test())
}

/// Deterministic 64-bit generator (SplitMix64).
struct Gen(u64);

impl Gen {
    fn new(seed: u64) -> Gen {
        Gen(seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(1))
    }
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
    fn below(&mut self, n: u64) -> u64 {
        self.next() % n.max(1)
    }
    fn len(&mut self, max: u64) -> usize {
        match self.below(8) {
            0 => 0,
            1 => 1,
            _ => self.below(max) as usize,
        }
    }
    /// Tagged records: small key space so groups collide, values in a small
    /// range so aggregations are interesting.
    fn tagged_records(&mut self) -> Vec<(u32, i64)> {
        let n = self.len(120);
        (0..n).map(|_| (self.below(8) as u32, self.below(40) as i64 - 20)).collect()
    }
}

const SEEDS: u64 = 16;

/// Per-group sequential oracle for a map/filter/aggregate pipeline.
fn oracle_pipeline(records: &[(u32, i64)]) -> Vec<(u32, (i64, u64))> {
    let mut groups: HashMap<u32, Vec<i64>> = HashMap::new();
    for &(k, v) in records {
        groups.entry(k).or_default().push(v);
    }
    let mut out: Vec<(u32, (i64, u64))> = groups
        .into_iter()
        .map(|(k, vs)| {
            let mapped: Vec<i64> = vs.iter().map(|v| v * 3 + 1).filter(|v| v % 2 != 0).collect();
            let sum: i64 = mapped.iter().sum();
            (k, (sum, mapped.len() as u64))
        })
        .collect();
    out.sort_by_key(|(k, _)| *k);
    out
}

/// m(op(x)) = op'(m(x)) for a map+filter+fold+count pipeline over
/// arbitrary nested data.
#[test]
fn lifted_pipeline_matches_per_group_oracle() {
    for seed in 0..SEEDS {
        let records = Gen::new(seed).tagged_records();
        let expect = oracle_pipeline(&records);
        let e = engine();
        let bag = e.parallelize(records.clone(), 5);
        let nested = group_by_key_into_nested_bag(&e, &bag, MatryoshkaConfig::optimized()).unwrap();
        let result = nested.map_with_lifted_udf(|_k, group| {
            let mapped = group.map(|v| v * 3 + 1).filter(|v| v % 2 != 0);
            let sum = mapped.fold(0i64, |a, v| a + v, |a, b| a + b);
            let count = mapped.count();
            sum.zip_with(&count, |s, c| (*s, *c))
        });
        let mut got = result.collect().unwrap();
        got.sort_by_key(|(k, _)| *k);
        assert_eq!(got, expect, "seed {seed}");
    }
}

/// Lifted distinct+count equals per-group set cardinality.
#[test]
fn lifted_distinct_count_matches() {
    for seed in 0..SEEDS {
        let records = Gen::new(seed ^ 0x11).tagged_records();
        let mut expect: Vec<(u32, u64)> = {
            let mut m: HashMap<u32, std::collections::HashSet<i64>> = HashMap::new();
            for &(k, v) in &records {
                m.entry(k).or_default().insert(v);
            }
            m.into_iter().map(|(k, s)| (k, s.len() as u64)).collect()
        };
        expect.sort_by_key(|(k, _)| *k);
        let e = engine();
        let bag = e.parallelize(records.clone(), 4);
        let nested = group_by_key_into_nested_bag(&e, &bag, MatryoshkaConfig::optimized()).unwrap();
        let mut got =
            nested.map_with_lifted_udf(|_k, group| group.distinct().count()).collect().unwrap();
        got.sort_by_key(|(k, _)| *k);
        assert_eq!(got, expect, "seed {seed}");
    }
}

/// Lifted reduce_by_key never merges across tags, for arbitrary data.
#[test]
fn lifted_reduce_by_key_respects_tags() {
    for seed in 0..SEEDS {
        let mut g = Gen::new(seed ^ 0x22);
        let n = g.len(100);
        let records: Vec<(u32, u32, i64)> =
            (0..n).map(|_| (g.below(5) as u32, g.below(4) as u32, 1 + g.below(9) as i64)).collect();
        let mut expect: HashMap<(u32, u32), i64> = HashMap::new();
        for &(t, k, v) in &records {
            *expect.entry((t, k)).or_insert(0) += v;
        }
        let e = engine();
        let pairs: Vec<(u32, (u32, i64))> = records.iter().map(|&(t, k, v)| (t, (k, v))).collect();
        let bag = e.parallelize(pairs, 4);
        let nested = group_by_key_into_nested_bag(&e, &bag, MatryoshkaConfig::optimized()).unwrap();
        let got = nested
            .map_with_lifted_udf(|_t, group| group.reduce_by_key(|a, b| a + b))
            .collect()
            .unwrap();
        assert_eq!(got.len(), expect.len(), "seed {seed}");
        for (t, (k, v)) in got {
            assert_eq!(expect.get(&(t, k)), Some(&v), "tag {t} key {k} seed {seed}");
        }
    }
}

/// The lifted do-while retires every tag after exactly its own number
/// of iterations, for arbitrary per-tag iteration counts (Listing 4's
/// P1-P3 as a property).
#[test]
fn lifted_while_matches_per_tag_loops() {
    for seed in 0..SEEDS {
        let mut g = Gen::new(seed ^ 0x33);
        let n = 1 + g.below(23) as usize;
        let counts: Vec<i64> = (0..n).map(|_| g.below(12) as i64).collect();
        let e = engine();
        let tags: Vec<u64> = (0..counts.len() as u64).collect();
        let ctx = LiftingContext::new(
            e.clone(),
            e.parallelize(tags.clone(), 3),
            tags.len() as u64,
            MatryoshkaConfig::optimized(),
        );
        let init = InnerScalar::from_repr(
            e.parallelize(tags.iter().map(|&t| (t, (counts[t as usize], 0i64))).collect(), 3),
            ctx,
        );
        let out = lifted_while(
            &init,
            |s: &InnerScalar<u64, (i64, i64)>| {
                let next = s.map(|(n, steps)| (n - 1, steps + 1));
                let cond = next.map(|(n, _)| *n > 0);
                Ok((next, cond))
            },
            None,
        )
        .unwrap();
        let mut got = out.collect().unwrap();
        got.sort_by_key(|(t, _)| *t);
        for (t, (_, steps)) in got {
            // A do-while runs at least once.
            let expect = counts[t as usize].max(1);
            assert_eq!(steps, expect, "tag {t} seed {seed}");
        }
    }
}

/// Matryoshka bounce rate equals the sequential oracle for arbitrary
/// visit logs (the end-to-end isomorphism on the paper's Listing 1).
#[test]
fn bounce_rate_is_correct_on_arbitrary_logs() {
    for seed in 0..SEEDS {
        let mut g = Gen::new(seed ^ 0x44);
        let n = 1 + g.below(149) as usize;
        let visits: Vec<(u32, u64)> = (0..n).map(|_| (g.below(6) as u32, g.below(30))).collect();
        let e = engine();
        let oracle = bounce_rate::reference(&visits);
        let bag = e.parallelize(visits.clone(), 4);
        let got = bounce_rate::matryoshka(&e, &bag, MatryoshkaConfig::optimized()).unwrap();
        assert_eq!(got.len(), oracle.len(), "seed {seed}");
        for ((d1, r1), (d2, r2)) in got.iter().zip(&oracle) {
            assert_eq!(d1, d2, "seed {seed}");
            assert!((r1 - r2).abs() < 1e-12, "seed {seed}");
        }
    }
}

/// collect_nested is the inverse isomorphism m^-1: grouping then
/// reconstructing yields exactly the driver-side grouping.
#[test]
fn nested_bag_roundtrip() {
    for seed in 0..SEEDS {
        let records = Gen::new(seed ^ 0x55).tagged_records();
        let e = engine();
        let bag = e.parallelize(records.clone(), 4);
        let nested = group_by_key_into_nested_bag(&e, &bag, MatryoshkaConfig::optimized()).unwrap();
        let mut got = nested.collect_nested().unwrap();
        got.iter_mut().for_each(|(_, vs)| vs.sort());
        got.sort_by_key(|(k, _)| *k);
        let mut expect: HashMap<u32, Vec<i64>> = HashMap::new();
        for &(k, v) in &records {
            expect.entry(k).or_default().push(v);
        }
        let mut expect: Vec<(u32, Vec<i64>)> = expect
            .into_iter()
            .map(|(k, mut vs)| {
                vs.sort();
                (k, vs)
            })
            .collect();
        expect.sort_by_key(|(k, _)| *k);
        assert_eq!(got, expect, "seed {seed}");
    }
}

/// The IR's pure evaluator agrees with the lifted scalar pipeline: a
/// random arithmetic expression over a per-group count computes the
/// same value lifted as it does sequentially.
#[test]
fn ir_lifted_scalars_match_pure_evaluation() {
    use matryoshka::ir::ast::{BinOp, Expr, Lambda};
    use matryoshka::ir::{parsing_phase, Dialect, Lowering, RtVal, Value};

    for seed in 0..8u64 {
        let mut g = Gen::new(seed ^ 0x66);
        let n = 1 + g.below(39) as usize;
        let records: Vec<(i64, i64)> =
            (0..n).map(|_| (g.below(4) as i64, g.below(5) as i64)).collect();
        let mul = 1 + g.below(4) as i64;
        let add = g.below(10) as i64 - 5;

        let program = Expr::Map(
            Box::new(Expr::GroupByKey(Box::new(Expr::Source("xs".into())))),
            Lambda::new(
                "g",
                Expr::Tuple(vec![
                    Expr::proj(Expr::var("g"), 0),
                    Expr::bin(
                        BinOp::Add,
                        Expr::bin(
                            BinOp::Mul,
                            Expr::Count(Box::new(Expr::proj(Expr::var("g"), 1))),
                            Expr::long(mul),
                        ),
                        Expr::long(add),
                    ),
                ]),
            ),
        );
        let parsed = parsing_phase(&program, &["xs"], Dialect::Matryoshka).unwrap();
        let e = engine();
        let xs = e.parallelize(
            records
                .iter()
                .map(|&(k, v)| Value::tuple(vec![Value::Long(k), Value::Long(v)]))
                .collect(),
            3,
        );
        let lowering = Lowering::new(e.clone(), MatryoshkaConfig::optimized());
        let out = lowering.run(&parsed, &HashMap::from([("xs".to_string(), xs)])).unwrap();
        let mut got = match out {
            RtVal::Bag(b) => b.collect().unwrap(),
            other => panic!("expected bag, got {other:?}"),
        };
        got.sort();
        let mut expect: HashMap<i64, i64> = HashMap::new();
        for &(k, _) in &records {
            *expect.entry(k).or_insert(0) += 1;
        }
        let mut expect: Vec<Value> = expect
            .into_iter()
            .map(|(k, n)| Value::tuple(vec![Value::Long(k), Value::Long(n * mul + add)]))
            .collect();
        expect.sort();
        assert_eq!(got, expect, "seed {seed}");
    }
}
