//! Adaptive execution must be semantically invisible: for every paper
//! workload, under uniform and Zipf-skewed inputs, the feedback-driven
//! re-optimizer (`docs/ADAPTIVE.md`) computes the same answers as the fully
//! static plan — only the physical plan (partition counts, join algorithms,
//! salting) may differ. Inputs are drawn from seeded SplitMix64 streams so
//! failures are reproducible.
//!
//! Two golden fixtures additionally pin the re-optimizer's *behavior* on a
//! skewed input: the exact sequence of adaptive decisions plus the simulated
//! runtime, and a case where reduce-side skew salting actually fires. Any
//! change to the decision rules shows up as a conscious diff here.

use matryoshka::core::{AdaptiveConfig, MatryoshkaConfig};
use matryoshka::datagen::*;
use matryoshka::engine::{ClusterConfig, Engine};
use matryoshka::tasks::seq::{KmeansParams, PageRankParams};
use matryoshka::tasks::{avg_distances, bounce_rate, kmeans, pagerank};

fn engine() -> Engine {
    Engine::new(ClusterConfig::local_test())
}

/// Deterministic 64-bit generator (SplitMix64), as in the engine's property
/// tests.
struct Gen(u64);

impl Gen {
    fn new(seed: u64) -> Gen {
        Gen(seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(1))
    }
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
    fn below(&mut self, n: u64) -> u64 {
        self.next() % n.max(1)
    }
}

const SEEDS: u64 = 6;

const DISTS: [KeyDist; 2] = [KeyDist::Uniform, KeyDist::Zipf(1.2)];

#[test]
fn bounce_rate_adaptive_equals_static_under_uniform_and_zipf() {
    for seed in 0..SEEDS {
        for dist in DISTS {
            let mut g = Gen::new(seed);
            let visits = 2_000 + g.below(6_000);
            let groups = 8 + g.below(40) as u32;
            let log = visit_log(&VisitSpec {
                visits,
                groups,
                visitors_per_group: (visits / groups as u64 / 3).max(4),
                bounce_fraction: 0.3,
                key_dist: dist,
                seed: 100 + seed,
            });
            let run = |cfg: MatryoshkaConfig| {
                let e = engine();
                let b = e.parallelize(log.clone(), 8);
                bounce_rate::matryoshka(&e, &b, cfg).unwrap()
            };
            let stat = run(MatryoshkaConfig::optimized());
            let adap = run(MatryoshkaConfig::adaptive());
            // Bounce rates are ratios of exact integer counts: any plan
            // difference that changed a count would change the bits.
            assert_eq!(stat, adap, "seed {seed} {dist:?}");
        }
    }
}

#[test]
fn pagerank_adaptive_equals_static_under_uniform_and_zipf() {
    // A tiny epsilon pins the iteration count, so static and adaptive runs
    // perform the same number of lifted iterations and can only differ by
    // floating-point reassociation from different partitionings.
    let params = PageRankParams { damping: 0.85, epsilon: 1e-12, max_iterations: 8 };
    for seed in 0..SEEDS {
        for dist in DISTS {
            let mut g = Gen::new(seed ^ 0x51);
            let groups = 4 + g.below(28) as u32;
            let edges = grouped_edges(&GroupedGraphSpec {
                total_edges: 2_000 + g.below(4_000),
                groups,
                vertices_per_group: 4 + g.below(8) as u32,
                key_dist: dist,
                seed: 200 + seed,
            });
            let run = |cfg: MatryoshkaConfig| {
                let e = engine();
                let b = e.parallelize(edges.clone(), 6);
                pagerank::matryoshka(&e, &b, &params, cfg, 0.0).unwrap()
            };
            let stat = run(MatryoshkaConfig::optimized());
            let adap = run(MatryoshkaConfig::adaptive());
            assert_eq!(stat.len(), adap.len(), "seed {seed} {dist:?}");
            for ((g1, (v1, r1)), (g2, (v2, r2))) in stat.iter().zip(&adap) {
                assert_eq!((g1, v1), (g2, v2), "seed {seed} {dist:?}");
                assert!(
                    (r1 - r2).abs() < 1e-6,
                    "seed {seed} {dist:?} group {g1} vertex {v1}: {r1} vs {r2}"
                );
            }
        }
    }
}

#[test]
fn kmeans_adaptive_equals_static_for_both_variants() {
    let params = KmeansParams::default();
    for seed in 0..SEEDS {
        let mut g = Gen::new(seed ^ 0xC3);
        let k = 3 + g.below(3) as usize;
        let spec = KmeansSpec {
            points: 600 + g.below(900),
            dim: 2 + g.below(2) as usize,
            true_clusters: k,
            k,
            spread: 0.04,
            seed: 300 + seed,
        };
        let points = point_cloud(&spec);
        let configs = initial_centroid_configs(&spec, 3);

        // Shared-points variant.
        let run = |cfg: MatryoshkaConfig| {
            let e = engine();
            let cb = e.parallelize(configs.clone(), 2);
            let pb = e.parallelize(points.clone(), 5);
            kmeans::matryoshka(&e, &cb, &pb, &params, cfg).unwrap()
        };
        let stat = run(MatryoshkaConfig::optimized());
        let adap = run(MatryoshkaConfig::adaptive());
        for ((i1, (_, c1)), (i2, (_, c2))) in stat.iter().zip(&adap) {
            assert_eq!(i1, i2, "seed {seed}");
            assert!((c1 - c2).abs() / c1.max(1e-9) < 1e-6, "seed {seed}: {c1} vs {c2}");
        }

        // Grouped-samples variant with a skewed group assignment (three
        // quarters of the samples land in group 0).
        let samples: Vec<(u32, Point)> = points
            .iter()
            .enumerate()
            .map(|(i, p)| (if i % 4 == 0 { (i % 24 / 4) as u32 } else { 0 }, p.clone()))
            .collect();
        let run_g = |cfg: MatryoshkaConfig| {
            let e = engine();
            let cb = e.parallelize(configs.clone(), 2);
            let sb = e.parallelize(samples.clone(), 5);
            kmeans::matryoshka_grouped(&e, &cb, &sb, &params, cfg).unwrap()
        };
        let stat_g = run_g(MatryoshkaConfig::optimized());
        let adap_g = run_g(MatryoshkaConfig::adaptive());
        for ((i1, (_, c1)), (i2, (_, c2))) in stat_g.iter().zip(&adap_g) {
            assert_eq!(i1, i2, "seed {seed} (grouped)");
            assert!((c1 - c2).abs() / c1.max(1e-9) < 1e-6, "seed {seed} (grouped): {c1} vs {c2}");
        }
    }
}

#[test]
fn avg_distances_adaptive_equals_static() {
    for seed in 0..SEEDS {
        let mut g = Gen::new(seed ^ 0xE7);
        let graph = component_graph(&ComponentGraphSpec {
            components: 3 + g.below(5) as u32,
            vertices_per_component: 8 + g.below(10) as u32,
            extra_edges_per_component: 4 + g.below(8) as u32,
            seed: 400 + seed,
        });
        let run = |cfg: MatryoshkaConfig| {
            let e = engine();
            let b = e.parallelize(graph.clone(), 6);
            avg_distances::matryoshka(&e, &b, cfg, 64).unwrap()
        };
        let stat = run(MatryoshkaConfig::optimized());
        let adap = run(MatryoshkaConfig::adaptive());
        assert_eq!(stat.len(), adap.len(), "seed {seed}");
        for ((c1, d1), (c2, d2)) in stat.iter().zip(&adap) {
            assert_eq!(c1, c2, "seed {seed}");
            assert!((d1 - d2).abs() < 1e-9, "seed {seed} component {c1}: {d1} vs {d2}");
        }
    }
}

/// The Fig. 7 setting at test scale: Zipf-1.5 group sizes, ~2.5 MB edge
/// records (20 GB total) and 8 MiB per-topic scalars, so the per-tag scalar
/// relation (64 x 8 MiB = 512 MiB) is over the paper cluster's broadcast
/// cap and the static plan would repartition-join the hot tag onto one task.
fn skewed_fixture() -> (Vec<(u32, (u64, u64))>, f64, f64, PageRankParams) {
    let edges = grouped_edges(&GroupedGraphSpec {
        total_edges: 8_192,
        groups: 64,
        vertices_per_group: 12,
        key_dist: KeyDist::Zipf(1.5),
        seed: 7,
    });
    let record_bytes = 20.0 * (1u64 << 30) as f64 / 8_192.0;
    let scalar_bytes = (8 << 20) as f64;
    let params = PageRankParams { damping: 0.85, epsilon: 1e-12, max_iterations: 4 };
    (edges, record_bytes, scalar_bytes, params)
}

/// Golden fixture: the exact adaptive decision sequence and the simulated
/// runtime on the skewed input are pinned. A change here means the
/// re-optimizer behaves differently — update the expectations deliberately
/// and record why in the commit.
#[test]
fn golden_adaptive_decision_sequence_and_sim_time_on_skewed_input() {
    let (edges, record_bytes, scalar_bytes, params) = skewed_fixture();

    let e = Engine::new(ClusterConfig::paper_small_cluster());
    let bag = e.parallelize_with_bytes(edges.clone(), 96, record_bytes);
    let adap = pagerank::matryoshka(&e, &bag, &params, MatryoshkaConfig::adaptive(), scalar_bytes)
        .unwrap();

    // The answer still matches the static plan.
    let e2 = Engine::new(ClusterConfig::paper_small_cluster());
    let bag2 = e2.parallelize_with_bytes(edges, 96, record_bytes);
    let stat =
        pagerank::matryoshka(&e2, &bag2, &params, MatryoshkaConfig::optimized(), scalar_bytes)
            .unwrap();
    assert_eq!(stat.len(), adap.len());
    for ((g1, (v1, r1)), (g2, (v2, r2))) in stat.iter().zip(&adap) {
        assert_eq!((g1, v1), (g2, v2));
        assert!((r1 - r2).abs() < 1e-6, "group {g1} vertex {v1}: {r1} vs {r2}");
    }

    let seq: Vec<(String, String)> = e
        .decisions()
        .iter()
        .filter(|d| d.site.starts_with("adaptive_"))
        .map(|d| (d.site.to_string(), d.choice.clone()))
        .collect();
    let join = ("adaptive_tag_join", "repartition");
    let keep = ("adaptive_skew_salt", "keep");
    let coalesce = ("adaptive_coalesce", "400");
    let mut expect: Vec<(&str, &str)> = Vec::new();
    // Setup: degree computation's tag join, then coalescing the grouping
    // and co-partitioning shuffles (1200 partitions observed down to 400),
    // and the initial-ranks joins — each fat scalar repartitions (512 MiB
    // is over the broadcast cap) and each salting check declines ("keep":
    // replicating the 8 MiB-record scalar side would outweigh the hot
    // partition).
    expect.push(join);
    expect.extend([coalesce, coalesce, coalesce]);
    expect.extend([join, join, join]);
    expect.extend([keep, join, keep]);
    // Remaining lifted iterations (the first one's joins are part of the
    // setup block above): one coalesced reduce_by_key, then four tag joins
    // (contributions, dangling mass, rank update, convergence check), each
    // re-decided from observed sizes and each declining to salt.
    for _ in 0..3 {
        expect.push(coalesce);
        for _ in 0..4 {
            expect.extend([join, keep]);
        }
    }
    assert_eq!(
        seq,
        expect.iter().map(|(s, c)| (s.to_string(), c.to_string())).collect::<Vec<_>>(),
        "adaptive decision sequence changed"
    );

    assert_eq!(e.sim_time().as_nanos(), 243_119_284_236, "adaptive simulated runtime changed");
}

/// Reduce-side skew salting actually firing: with the byte and skew gates
/// lowered to test scale (a cluster operator tuning `target_partition_bytes`
/// for a small cluster would do the same), the Zipf hot group's post-combine
/// partials trip the salting rule — the decision log shows `salt x8` — and
/// the salted aggregation still computes the static plan's answer.
#[test]
fn adaptive_salting_fires_on_hot_reduce_partitions_and_preserves_results() {
    let (edges, record_bytes, scalar_bytes, params) = skewed_fixture();
    let adaptive = AdaptiveConfig {
        target_partition_bytes: 64 * 1024,
        skew_threshold_milli: 1_500,
        ..AdaptiveConfig::enabled()
    };
    let cfg = MatryoshkaConfig { adaptive, ..MatryoshkaConfig::optimized() };

    let e = Engine::new(ClusterConfig::paper_small_cluster());
    let bag = e.parallelize_with_bytes(edges.clone(), 96, record_bytes);
    let adap = pagerank::matryoshka(&e, &bag, &params, cfg, scalar_bytes).unwrap();

    let salts: Vec<String> = e
        .decisions()
        .iter()
        .filter(|d| d.site == "adaptive_skew_salt")
        .map(|d| d.choice.clone())
        .collect();
    assert!(
        salts.iter().any(|c| c == "salt x8"),
        "expected reduce-side salting to fire on the hot partition; got {salts:?}"
    );

    let e2 = Engine::new(ClusterConfig::paper_small_cluster());
    let bag2 = e2.parallelize_with_bytes(edges, 96, record_bytes);
    let stat =
        pagerank::matryoshka(&e2, &bag2, &params, MatryoshkaConfig::optimized(), scalar_bytes)
            .unwrap();
    assert_eq!(stat.len(), adap.len());
    for ((g1, (v1, r1)), (g2, (v2, r2))) in stat.iter().zip(&adap) {
        assert_eq!((g1, v1), (g2, v2));
        assert!((r1 - r2).abs() < 1e-6, "group {g1} vertex {v1}: {r1} vs {r2}");
    }
}
