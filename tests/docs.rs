//! Docs that can't rot. Two gates over the repository's Markdown
//! (`*.md` at the root plus `docs/*.md`), run as part of the normal test
//! suite and of `scripts/ci.sh`:
//!
//! 1. **Link checking**: every relative `[text](target)` link must point at
//!    a file that exists, and every `#fragment` (same-file or cross-file)
//!    must match a real heading under GitHub's anchor-slug rules.
//! 2. **Example checking**: every fenced ```mat code block is parsed and
//!    run through the static analyzer (`docs/ANALYSIS.md`), exactly like
//!    the `examples/programs/` corpus — documentation snippets are programs
//!    and must keep passing `matryoshka-check`.
//!
//! Both are std-only, like everything else in the workspace.

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};

use matryoshka::ir::{analyze, check, parse_program, Dialect};

/// The documentation surface under test: root Markdown + `docs/`.
fn markdown_files() -> Vec<PathBuf> {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let mut out = Vec::new();
    for dir in [root.to_path_buf(), root.join("docs")] {
        for entry in std::fs::read_dir(&dir).unwrap_or_else(|e| panic!("read {dir:?}: {e}")) {
            let path = entry.unwrap().path();
            if path.extension().is_some_and(|x| x == "md") {
                out.push(path);
            }
        }
    }
    out.sort();
    assert!(out.len() >= 8, "expected the repo's documentation set, found {out:?}");
    out
}

/// Lines of `src` with fenced code blocks blanked out (fences toggle on
/// lines whose trimmed form starts with ```), so link and heading scanning
/// never fires inside examples.
fn prose_lines(src: &str) -> Vec<&str> {
    let mut in_fence = false;
    src.lines()
        .map(|line| {
            if line.trim_start().starts_with("```") {
                in_fence = !in_fence;
                ""
            } else if in_fence {
                ""
            } else {
                line
            }
        })
        .collect()
}

/// GitHub's heading-anchor slug: lowercase; keep letters, digits, `_` and
/// `-`; spaces become `-`; everything else is dropped.
fn github_slug(heading: &str) -> String {
    let mut slug = String::new();
    for ch in heading.trim().chars() {
        if ch.is_alphanumeric() || ch == '_' || ch == '-' {
            slug.extend(ch.to_lowercase());
        } else if ch == ' ' {
            slug.push('-');
        }
    }
    slug
}

/// The anchor set of one Markdown file: every ATX heading's slug, with
/// GitHub's `-1`, `-2`, ... suffixes for duplicates.
fn anchors_of(src: &str) -> Vec<String> {
    let mut seen: BTreeMap<String, u32> = BTreeMap::new();
    let mut out = Vec::new();
    for line in prose_lines(src) {
        let trimmed = line.trim_start();
        let hashes = trimmed.bytes().take_while(|&b| b == b'#').count();
        if !(1..=6).contains(&hashes) || !trimmed[hashes..].starts_with(' ') {
            continue;
        }
        // Strip inline-code backticks so `engine.trace_json()` slugs the
        // way GitHub renders it (formatting marks carry no slug weight).
        let text: String = trimmed[hashes..].replace('`', "");
        let slug = github_slug(&text);
        let n = seen.entry(slug.clone()).or_insert(0);
        out.push(if *n == 0 { slug } else { format!("{slug}-{n}") });
        *n += 1;
    }
    out
}

/// Every inline `[text](target)` link in `src`, in order. Images
/// (`![alt](target)`) count too — their targets must exist just the same.
fn links_of(src: &str) -> Vec<String> {
    let mut out = Vec::new();
    for line in prose_lines(src) {
        let bytes = line.as_bytes();
        let mut i = 0;
        while i < bytes.len() {
            if bytes[i] == b'[' {
                // Find the matching `](` then the closing `)`.
                if let Some(close) = line[i..].find("](") {
                    let start = i + close + 2;
                    if let Some(end) = line[start..].find(')') {
                        out.push(line[start..start + end].to_string());
                        i = start + end + 1;
                        continue;
                    }
                }
            }
            i += 1;
        }
    }
    out
}

#[test]
fn markdown_links_and_anchors_resolve() {
    let mut checked = 0;
    let mut failures = Vec::new();
    for file in markdown_files() {
        let src = std::fs::read_to_string(&file).unwrap();
        let dir = file.parent().unwrap();
        for link in links_of(&src) {
            if link.starts_with("http://")
                || link.starts_with("https://")
                || link.starts_with("mailto:")
            {
                continue; // external; not this checker's job
            }
            checked += 1;
            let (path_part, anchor) = match link.split_once('#') {
                Some((p, a)) => (p, Some(a)),
                None => (link.as_str(), None),
            };
            let (target_src, target_name) = if path_part.is_empty() {
                (src.clone(), file.clone())
            } else {
                let target = dir.join(path_part);
                if !target.exists() {
                    failures.push(format!("{}: broken link `{link}`", file.display()));
                    continue;
                }
                if anchor.is_none() {
                    continue;
                }
                (std::fs::read_to_string(&target).unwrap(), target)
            };
            if let Some(anchor) = anchor {
                if !anchors_of(&target_src).iter().any(|a| a == anchor) {
                    failures.push(format!(
                        "{}: link `{link}`: no heading in {} slugs to `#{anchor}`",
                        file.display(),
                        target_name.display()
                    ));
                }
            }
        }
    }
    assert!(failures.is_empty(), "{}", failures.join("\n"));
    assert!(checked >= 10, "expected a linked documentation set, checked only {checked} links");
}

/// Every fenced ```mat block in `src`, in order.
fn mat_blocks(src: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut current: Option<String> = None;
    for line in src.lines() {
        let trimmed = line.trim_start();
        match current.as_mut() {
            None if trimmed == "```mat" => current = Some(String::new()),
            None => {}
            Some(block) => {
                if trimmed.starts_with("```") {
                    out.push(current.take().unwrap());
                } else {
                    block.push_str(line);
                    block.push('\n');
                }
            }
        }
    }
    out
}

#[test]
fn documented_mat_examples_pass_the_analyzer() {
    let mut total = 0;
    for file in markdown_files() {
        let src = std::fs::read_to_string(&file).unwrap();
        for (i, block) in mat_blocks(&src).iter().enumerate() {
            total += 1;
            let ast = parse_program(block)
                .unwrap_or_else(|e| panic!("{}: mat block #{i}: {e}", file.display()));
            let sources = analyze::source_names(&ast);
            let refs: Vec<&str> = sources.iter().map(String::as_str).collect();
            check(&ast, &refs, Dialect::Matryoshka).unwrap_or_else(|e| {
                panic!("{}: mat block #{i} rejected by the analyzer: {e}", file.display())
            });
        }
    }
    assert!(
        total >= 2,
        "expected documented mat examples (docs/FAULTS.md has them), found {total}"
    );
}
