//! Every shipped IR program — the `examples/programs/` corpus and the
//! tasks crate's built-in IR workloads — must pass the static analyzer
//! with no error-severity diagnostics. This is the test-suite twin of the
//! `scripts/ci.sh` analyzer step (`matryoshka-check`).

use matryoshka::ir::{analyze, check, parse_program, Dialect};
use matryoshka::tasks::ir_programs;

#[test]
fn builtin_ir_workloads_pass_check() {
    for p in ir_programs::ALL {
        let ast = parse_program(p.source).unwrap_or_else(|e| panic!("{}: {e}", p.name));
        check(&ast, p.inputs, Dialect::Matryoshka)
            .unwrap_or_else(|e| panic!("{} rejected by the analyzer: {e}", p.name));
    }
}

#[test]
fn example_program_corpus_passes_check() {
    let dir = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("examples/programs");
    let mut checked = 0;
    for entry in std::fs::read_dir(&dir).unwrap_or_else(|e| panic!("read {dir:?}: {e}")) {
        let path = entry.unwrap().path();
        if path.extension().is_none_or(|x| x != "mat") {
            continue;
        }
        let src = std::fs::read_to_string(&path).unwrap();
        let ast = parse_program(&src).unwrap_or_else(|e| panic!("{path:?}: {e}"));
        let sources = analyze::source_names(&ast);
        let refs: Vec<&str> = sources.iter().map(String::as_str).collect();
        check(&ast, &refs, Dialect::Matryoshka)
            .unwrap_or_else(|e| panic!("{path:?} rejected by the analyzer: {e}"));
        checked += 1;
    }
    assert!(checked >= 5, "expected a real corpus under {dir:?}, found {checked} programs");
}
