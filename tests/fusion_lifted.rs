//! Narrow-stage fusion inside lifted control flow: a `lifted_while` whose
//! body builds a fresh narrow chain every iteration must (a) compute the
//! same answer and the same simulated cost with fusion on and off, and
//! (b) fuse every iteration's chain without allocating a new composite name
//! per iteration (DESIGN.md "Narrow-stage fusion": iteration stability).

use std::collections::BTreeSet;

use matryoshka::core::{group_by_key_into_nested_bag, lifted_while, InnerBag, MatryoshkaConfig};
use matryoshka::engine::{ClusterConfig, Engine};

/// Run a grouped iterative shrink: each iteration maps and filters every
/// group's survivors through a three-op narrow chain until a group drops to
/// 40 elements or fewer. Returns the flattened survivors, the simulated
/// time, the fusion counters, and the distinct fused-chain names logged.
#[allow(clippy::type_complexity)]
fn run(fuse: bool) -> (Vec<(u32, u64)>, u64, u64, u64, BTreeSet<String>) {
    let e = Engine::new(ClusterConfig { fuse_narrow: fuse, ..ClusterConfig::local_test() });
    let data: Vec<(u32, u64)> = (0..600u64).map(|i| ((i % 6) as u32, i)).collect();
    let bag = e.parallelize(data, 4);
    let nested = group_by_key_into_nested_bag(&e, &bag, MatryoshkaConfig::optimized()).unwrap();
    let survivors = nested
        .map_with_lifted_udf(|_g, group: &InnerBag<u32, u64>| {
            lifted_while(
                group,
                |state: &InnerBag<u32, u64>| {
                    // A fresh map -> filter -> map chain per iteration; the
                    // intermediates die at the end of this statement, so the
                    // chain is exclusively owned and fuses at eval time.
                    let next = state
                        .map(|&x| x.wrapping_mul(3).wrapping_add(1))
                        .filter(|&x| x % 4 != 0)
                        .map(|&x| x >> 1);
                    let cond = next.count().map(|c| *c > 40);
                    Ok((next, cond))
                },
                Some(5),
            )
        })
        .unwrap();
    let mut out = survivors.collect().unwrap();
    out.sort_unstable();
    let stats = e.stats();
    let fused_names: BTreeSet<String> =
        e.decisions().into_iter().filter(|d| d.site == "narrow_fusion").map(|d| d.choice).collect();
    (out, e.sim_time().as_nanos(), stats.stages_fused, stats.intermediates_elided, fused_names)
}

#[test]
fn lifted_loop_is_identical_with_and_without_fusion() {
    let (out_u, nanos_u, fused_u, elided_u, names_u) = run(false);
    let (out_f, nanos_f, fused_f, elided_f, names_f) = run(true);
    assert_eq!(out_u, out_f, "fusion changed a lifted loop's results");
    assert_eq!(nanos_u, nanos_f, "fusion changed a lifted loop's simulated cost");
    assert_eq!((fused_u, elided_u), (0, 0), "fusion-disabled run must not fuse");
    assert!(names_u.is_empty());
    // Every iteration's body chain fused (several iterations ran), and the
    // per-iteration chains — identical in shape — share one interned
    // composite name instead of minting a new one per iteration.
    assert!(
        fused_f >= 3,
        "expected one fused stage per loop iteration, got {fused_f} (names: {names_f:?})"
    );
    assert!(elided_f >= fused_f, "every fused stage elides at least one intermediate");
    assert!(
        names_f.contains("fused(map|filter|map)"),
        "the loop body's chain must fuse under one name, got {names_f:?}"
    );
    // Iteration stability: many fused stages, but only as many interned
    // names as there are distinct chain *shapes* (the loop body's, plus the
    // retirement chains lifted_while builds internally).
    assert!(
        names_f.len() <= 3,
        "composite names must be interned per shape, not per iteration: {names_f:?}"
    );
}
