//! Equivalence and cost-monotonicity tests for the global plan-rewrite
//! pass (`matryoshka_ir::analyze::plan`): loop-invariant hoisting, CSE with
//! auto-caching, and dead-operator elimination.
//!
//! Two angles:
//!
//! * A concrete lifted-loop fixture (the shipped
//!   `examples/programs/invariant_loop.mat`) where the loop condition
//!   recomputes a `distinct` shuffle every iteration: hoisting must produce
//!   identical rows while executing at most half the stages.
//! * A seeded property sweep: 200+ random driver programs (operator
//!   chains, duplicated subplans behind `let`s, loops) run with rewrites
//!   off and on; results must match and the rewritten plan must never run
//!   *more* stages than the baseline.

use std::collections::HashMap;

use matryoshka::core::{MatryoshkaConfig, PlanRewriteConfig};
use matryoshka::engine::Engine;
use matryoshka::ir::analyze::plan::rewrite_plan;
use matryoshka::ir::ast::{BinOp, Expr, Lambda, Lambda2};
use matryoshka::ir::{parse_program, parsing_phase, Dialect, Lowering, RtVal, Value};

/// Run a post-parsing-phase program and render its result canonically
/// (bags are collected and sorted), returning the stage count too.
fn run(program: &Expr, inputs: &[(&str, Vec<Value>)], plan: PlanRewriteConfig) -> (String, u64) {
    let engine = Engine::local();
    let bound: HashMap<String, _> = inputs
        .iter()
        .map(|(name, rows)| (name.to_string(), engine.parallelize(rows.clone(), 3)))
        .collect();
    let mut cfg = MatryoshkaConfig::optimized();
    cfg.plan = plan;
    let lowering = Lowering::new(engine.clone(), cfg);
    let out = lowering.run(program, &bound).unwrap();
    let rendered = match out {
        RtVal::Scalar(v) => format!("{v}"),
        RtVal::Bag(b) => {
            let mut rows = b.collect().unwrap();
            rows.sort();
            format!("{rows:?}")
        }
        other => format!("{other:?}"),
    };
    (rendered, engine.stats().stages)
}

#[test]
fn hoisting_halves_stages_in_an_invariant_lifted_loop() {
    // The shipped example: a per-group lifted do-while whose condition
    // recomputes count(distinct(g.1)) — a shuffle — every iteration.
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("examples/programs/invariant_loop.mat");
    let src = std::fs::read_to_string(&path).unwrap();
    let ast = parse_program(&src).unwrap();
    let lowered = parsing_phase(&ast, &["edges"], Dialect::Matryoshka).unwrap();

    // Groups 0/1/2 hold 2/3/4 distinct values, so the loop runs up to 4
    // rounds and the baseline pays the distinct shuffle each round.
    let mut edges = Vec::new();
    for k in 0..3i64 {
        for v in 0..(k + 2) {
            edges.push(Value::tuple(vec![Value::Long(k), Value::Long(v)]));
            edges.push(Value::tuple(vec![Value::Long(k), Value::Long(v % 2)]));
        }
    }
    let inputs = [("edges", edges)];

    let rewrite = rewrite_plan(&lowered, &PlanRewriteConfig::enabled());
    assert!(
        rewrite.rewrites.iter().any(|r| r.title.starts_with("hoist")),
        "expected a hoist on the fixture, got {:?}",
        rewrite.rewrites
    );

    let (rows_base, stages_base) = run(&lowered, &inputs, PlanRewriteConfig::default());
    let (rows_opt, stages_opt) = run(&lowered, &inputs, PlanRewriteConfig::enabled());
    assert_eq!(rows_base, rows_opt, "hoisting changed the results");
    assert!(
        stages_base >= 2 * stages_opt,
        "expected at least 2x fewer stages with hoisting: baseline {stages_base}, \
         rewritten {stages_opt}"
    );
}

/// splitmix64, as in the IR round-trip property tests.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e3779b97f4a7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }
}

/// A random driver-mode bag expression over the `xs`/`ys` sources: map,
/// filter, distinct, and union chains with pure scalar UDFs.
fn gen_bag(r: &mut Rng, depth: u32) -> Expr {
    let source = |r: &mut Rng| Expr::Source(if r.below(2) == 0 { "xs" } else { "ys" }.to_string());
    if depth == 0 {
        return source(r);
    }
    let d = depth - 1;
    match r.below(5) {
        0 => Expr::Map(
            Box::new(gen_bag(r, d)),
            Lambda::new("m", Expr::bin(BinOp::Add, Expr::var("m"), Expr::long(r.below(3) as i64))),
        ),
        1 => Expr::Filter(
            Box::new(gen_bag(r, d)),
            Lambda::new("f", Expr::bin(BinOp::Gt, Expr::var("f"), Expr::long(r.below(3) as i64))),
        ),
        2 => Expr::Distinct(Box::new(gen_bag(r, d))),
        3 => Expr::Union(Box::new(gen_bag(r, d)), Box::new(gen_bag(r, d))),
        _ => source(r),
    }
}

/// A scalar reduction over a bag expression.
fn gen_scalar(r: &mut Rng, bag: Expr) -> Expr {
    match r.below(2) {
        0 => Expr::Count(Box::new(bag)),
        _ => Expr::Fold(
            Box::new(bag),
            Box::new(Expr::long(0)),
            Lambda2::new("a", "b", Expr::bin(BinOp::Add, Expr::var("a"), Expr::var("b"))),
        ),
    }
}

/// A random driver program exercising the rewrite surface: duplicated
/// subplans (CSE), multi-consumer `let`s (auto-cache), unused operator
/// bindings (DCE), and loops with invariant condition subplans (hoist).
fn gen_program(r: &mut Rng) -> Expr {
    let b1 = gen_bag(r, 2);
    let b2 = gen_bag(r, 2);
    match r.below(4) {
        0 => {
            // Multi-consumer let: auto-cache.
            let s1 = gen_scalar(r, Expr::var("shared"));
            let s2 = gen_scalar(r, Expr::var("shared"));
            Expr::let_("shared", b1, Expr::bin(BinOp::Add, s1, s2))
        }
        1 => {
            // Structurally duplicated subplans: CSE.
            let s = gen_scalar(r, b1);
            Expr::bin(BinOp::Add, s.clone(), s)
        }
        2 => {
            // Unused operator binding: DCE.
            let live = gen_scalar(r, b2);
            Expr::let_("dead", b1, live)
        }
        _ => {
            // Loop with an invariant condition subplan: hoist. `distinct`
            // bounds the trip count by the source cardinality, and the
            // step strictly increases, so the loop always terminates.
            let invariant = Expr::Count(Box::new(Expr::Distinct(Box::new(b1.clone()))));
            let tail = gen_scalar(r, b1);
            let looped = Expr::Loop {
                init: vec![("i".to_string(), Expr::long(0))],
                cond: Box::new(Expr::bin(BinOp::Lt, Expr::var("i"), invariant)),
                step: vec![Expr::bin(BinOp::Add, Expr::var("i"), Expr::long(1))],
                result: Box::new(Expr::var("i")),
            };
            Expr::bin(BinOp::Add, looped, tail)
        }
    }
}

#[test]
fn rewritten_random_plans_agree_with_baseline_across_seeds() {
    let xs: Vec<Value> = (0..30).map(|i| Value::Long(i % 7)).collect();
    let ys: Vec<Value> = (0..20).map(|i| Value::Long(i % 5)).collect();
    let inputs = [("xs", xs), ("ys", ys)];

    let mut total_rewrites = 0usize;
    for seed in 0..220u64 {
        let mut r = Rng(seed.wrapping_mul(0x9e37) ^ 0x6d61_7472_796f_7368);
        let program = gen_program(&mut r);
        total_rewrites += rewrite_plan(&program, &PlanRewriteConfig::enabled()).rewrites.len();
        let (base, stages_base) = run(&program, &inputs, PlanRewriteConfig::default());
        let (opt, stages_opt) = run(&program, &inputs, PlanRewriteConfig::enabled());
        assert_eq!(base, opt, "seed {seed}: rewrites changed the result of {program:?}");
        assert!(
            stages_opt <= stages_base,
            "seed {seed}: rewritten plan ran more stages ({stages_opt} > {stages_base}) \
             for {program:?}"
        );
    }
    // The sweep is only meaningful if rewrites actually fire.
    assert!(total_rewrites >= 100, "too few rewrites across seeds: {total_rewrites}");
}
