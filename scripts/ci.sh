#!/usr/bin/env bash
# Repository CI gate: formatting, lints (deny warnings), docs, build, tests.
# Run from the repository root: ./scripts/ci.sh
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo fmt --check"
cargo fmt --check

echo "== cargo clippy (deny warnings)"
cargo clippy --workspace --all-targets -- -D warnings

echo "== cargo doc --no-deps"
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps --workspace

echo "== cargo build --release"
cargo build --release

echo "== cargo test"
cargo test -q --workspace

echo "== static analyzer over shipped IR programs (matryoshka-check)"
# Every example program and every built-in task workload must pass the
# pre-lowering analyzer with no error-severity MAT0xx diagnostics.
cargo run -q --bin matryoshka-check -- --builtin examples/programs/*.mat

echo "== plan-rewrite explain report (matryoshka-check --explain)"
# The --explain report (before/after plan trees + per-rewrite safety
# justifications) must render for every shipped program, and the shipped
# invariant-loop example must actually exhibit a hoist.
cargo run -q --bin matryoshka-check -- --explain examples/programs/*.mat \
  | tee /tmp/explain.out
grep -q 'MAT093 hoist' /tmp/explain.out || {
  echo "expected a MAT093 hoist in the --explain report for invariant_loop.mat" >&2
  exit 1
}
rm -f /tmp/explain.out

echo "== adaptive-config validation (matryoshka-check --adaptive-config)"
# The enabled defaults must validate cleanly; a nonsensical config must emit
# MAT092 warnings (still exit 0: warnings never gate). grep runs without -q
# so it drains the pipe: -q exits at first match and the resulting EPIPE in
# cargo trips pipefail even on success.
cargo run -q --bin matryoshka-check -- --adaptive-config default
cargo run -q --bin matryoshka-check -- --adaptive-config \
  'salt_factor=1,target_partition_bytes=0' 2>&1 | grep 'MAT092' >/dev/null || {
  echo "expected MAT092 warnings for a nonsensical adaptive config" >&2
  exit 1
}

echo "== sanitizers (best effort: miri, then TSan, else skip)"
# The container has no network, so missing toolchain components (miri,
# rust-src for -Zbuild-std) cannot be installed on the fly; skip cleanly.
# The filter covers the engine pool/fusion tests and the UDF compiler's
# unit tests (thread-local frame reentrancy + take/replace discipline).
if cargo miri --version >/dev/null 2>&1 \
  && cargo miri test -p matryoshka-engine --lib pool fuse 2>/dev/null \
  && cargo miri test -p matryoshka-ir --lib compile 2>/dev/null; then
  echo "miri: engine pool + fusion + ir compile tests passed"
elif RUSTFLAGS="-Zsanitizer=thread" cargo +nightly test -p matryoshka-engine --lib pool fuse \
    -Zbuild-std --target "$(rustc -vV | sed -n 's/^host: //p')" 2>/dev/null \
  && RUSTFLAGS="-Zsanitizer=thread" cargo +nightly test -p matryoshka-ir --lib compile \
    -Zbuild-std --target "$(rustc -vV | sed -n 's/^host: //p')" 2>/dev/null; then
  echo "TSan: engine pool + fusion + ir compile tests passed"
else
  echo "sanitizers unavailable in this toolchain (miri/rust-src not installed); skipping"
fi

echo "== bench smoke (micro harness, tiny sizes)"
BENCH_SMOKE_OUT="$(mktemp)"
BENCH_MICRO_OUT="$BENCH_SMOKE_OUT" cargo bench -p matryoshka-bench --bench micro -- --smoke
grep -q '"median_ms"' "$BENCH_SMOKE_OUT" || {
  echo "bench smoke did not emit machine-readable records to $BENCH_SMOKE_OUT" >&2
  exit 1
}
# Each ablation must emit both arms so the pairwise comparisons in
# BENCH_micro.json never silently lose a side.
for arm in 'narrow_chain/fused' 'narrow_chain/unfused' \
  'plan_rewrites/hoist_on' 'plan_rewrites/hoist_off' \
  'udf_eval/interpreted' 'udf_eval/compiled'; do
  grep -q "\"$arm\"" "$BENCH_SMOKE_OUT" || {
    echo "bench smoke is missing the $arm ablation row" >&2
    exit 1
  }
done
rm -f "$BENCH_SMOKE_OUT"
# The committed artifact must stay parseable and keep the compiled-vs-
# interpreted UDF speedup it was measured with (full sizes, not smoke).
cargo bench -p matryoshka-bench --bench micro -- --validate BENCH_micro.json

echo "== fig7 skew bench smoke (adaptive sweep) + BENCH_skew.json parse check"
SKEW_SMOKE_OUT="$(mktemp)"
BENCH_SKEW_OUT="$SKEW_SMOKE_OUT" cargo run -q --release -p matryoshka-bench --bin fig7_skew -- --smoke
cargo run -q --release -p matryoshka-bench --bin fig7_skew -- --validate "$SKEW_SMOKE_OUT"
rm -f "$SKEW_SMOKE_OUT"
# The committed artifact must stay parseable and keep both series.
cargo run -q --release -p matryoshka-bench --bin fig7_skew -- --validate BENCH_skew.json

echo "== recovery sweep smoke (fault model) + BENCH_recovery.json parse check"
# Fast loss/checkpoint gate (asserts losses occur and checkpoints shrink
# replay — see docs/FAULTS.md), then parse-check the committed artifact.
cargo run -q --release -p matryoshka-bench --bin recovery_sweep -- --smoke
cargo run -q --release -p matryoshka-bench --bin recovery_sweep -- --validate BENCH_recovery.json

echo "== service smoke (matryoshka-serve + matryoshka-submit over TCP)"
# Start the job server on an ephemeral port, submit the example program
# corpus through the client, exercise the rejection path, and shut down
# gracefully (see docs/SERVICE.md).
SERVE_LOG="$(mktemp)"
./target/release/matryoshka-serve --policy fair --pools default:1,interactive:3 \
  --queue-capacity 32 >"$SERVE_LOG" 2>&1 &
SERVE_PID=$!
for _ in $(seq 1 100); do
  grep -q '^LISTENING ' "$SERVE_LOG" && break
  sleep 0.1
done
SERVE_ADDR="$(sed -n 's/^LISTENING //p' "$SERVE_LOG" | head -1)"
[ -n "$SERVE_ADDR" ] || {
  echo "matryoshka-serve did not print LISTENING" >&2
  cat "$SERVE_LOG" >&2
  exit 1
}
# The full shipped corpus must be admitted and complete (exit 0).
./target/release/matryoshka-submit --addr "$SERVE_ADDR" examples/programs/*.mat
# Analyzer-rejected programs must bounce at admission (exit 0 only because
# rejection is the expected outcome).
BAD_MAT="$(mktemp --suffix=.mat)"
printf 'map(source(xs), v => y)' >"$BAD_MAT"
./target/release/matryoshka-submit --addr "$SERVE_ADDR" --expect-reject "$BAD_MAT"
rm -f "$BAD_MAT"
# Graceful shutdown: the server must exit 0 after SHUTDOWN.
exec 3<>"/dev/tcp/${SERVE_ADDR%:*}/${SERVE_ADDR#*:}"
printf 'SHUTDOWN\n' >&3
head -1 <&3 | grep -q 'OK shutting down' || {
  echo "SHUTDOWN did not acknowledge" >&2
  exit 1
}
exec 3<&- 3>&-
wait "$SERVE_PID" || {
  echo "matryoshka-serve exited non-zero" >&2
  cat "$SERVE_LOG" >&2
  exit 1
}
rm -f "$SERVE_LOG"

echo "== service sweep smoke (scheduler fairness) + BENCH_service.json parse check"
# Fast policy/load gate on the virtual-time service, then parse-check the
# committed artifact (both policies, queue waits, admission rejections).
cargo run -q --release -p matryoshka-bench --bin service_sweep -- --smoke
cargo run -q --release -p matryoshka-bench --bin service_sweep -- --validate BENCH_service.json

echo "== docs link/anchor + mat-example check (tests/docs.rs)"
# Explicit rerun of the docs gate (also part of the workspace test run):
# every relative Markdown link/anchor must resolve and every fenced
# \`\`\`mat block must pass the static analyzer.
cargo test -q --test docs

echo "CI gate passed."
