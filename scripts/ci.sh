#!/usr/bin/env bash
# Repository CI gate: formatting, lints (deny warnings), docs, build, tests.
# Run from the repository root: ./scripts/ci.sh
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo fmt --check"
cargo fmt --check

echo "== cargo clippy (deny warnings)"
cargo clippy --workspace --all-targets -- -D warnings

echo "== cargo doc --no-deps"
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps --workspace

echo "== cargo build --release"
cargo build --release

echo "== cargo test"
cargo test -q --workspace

echo "CI gate passed."
