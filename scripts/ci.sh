#!/usr/bin/env bash
# Repository CI gate: formatting, lints (deny warnings), docs, build, tests.
# Run from the repository root: ./scripts/ci.sh
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo fmt --check"
cargo fmt --check

echo "== cargo clippy (deny warnings)"
cargo clippy --workspace --all-targets -- -D warnings

echo "== cargo doc --no-deps"
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps --workspace

echo "== cargo build --release"
cargo build --release

echo "== cargo test"
cargo test -q --workspace

echo "== static analyzer over shipped IR programs (matryoshka-check)"
# Every example program and every built-in task workload must pass the
# pre-lowering analyzer with no error-severity MAT0xx diagnostics.
cargo run -q --bin matryoshka-check -- --builtin examples/programs/*.mat

echo "== plan-rewrite explain report (matryoshka-check --explain)"
# The --explain report (before/after plan trees + per-rewrite safety
# justifications) must render for every shipped program, and the shipped
# invariant-loop example must actually exhibit a hoist.
cargo run -q --bin matryoshka-check -- --explain examples/programs/*.mat \
  | tee /tmp/explain.out
grep -q 'MAT093 hoist' /tmp/explain.out || {
  echo "expected a MAT093 hoist in the --explain report for invariant_loop.mat" >&2
  exit 1
}
rm -f /tmp/explain.out

echo "== adaptive-config validation (matryoshka-check --adaptive-config)"
# The enabled defaults must validate cleanly; a nonsensical config must emit
# MAT092 warnings (still exit 0: warnings never gate). grep runs without -q
# so it drains the pipe: -q exits at first match and the resulting EPIPE in
# cargo trips pipefail even on success.
cargo run -q --bin matryoshka-check -- --adaptive-config default
cargo run -q --bin matryoshka-check -- --adaptive-config \
  'salt_factor=1,target_partition_bytes=0' 2>&1 | grep 'MAT092' >/dev/null || {
  echo "expected MAT092 warnings for a nonsensical adaptive config" >&2
  exit 1
}

echo "== sanitizers (best effort: miri, then TSan, else skip)"
# The container has no network, so missing toolchain components (miri,
# rust-src for -Zbuild-std) cannot be installed on the fly; skip cleanly.
if cargo miri --version >/dev/null 2>&1 \
  && cargo miri test -p matryoshka-engine --lib pool fuse 2>/dev/null; then
  echo "miri: engine pool + fusion tests passed"
elif RUSTFLAGS="-Zsanitizer=thread" cargo +nightly test -p matryoshka-engine --lib pool fuse \
    -Zbuild-std --target "$(rustc -vV | sed -n 's/^host: //p')" 2>/dev/null; then
  echo "TSan: engine pool + fusion tests passed"
else
  echo "sanitizers unavailable in this toolchain (miri/rust-src not installed); skipping"
fi

echo "== bench smoke (micro harness, tiny sizes)"
BENCH_SMOKE_OUT="$(mktemp)"
BENCH_MICRO_OUT="$BENCH_SMOKE_OUT" cargo bench -p matryoshka-bench --bench micro -- --smoke
grep -q '"median_ms"' "$BENCH_SMOKE_OUT" || {
  echo "bench smoke did not emit machine-readable records to $BENCH_SMOKE_OUT" >&2
  exit 1
}
# The fusion ablation must emit both arms so the fused/unfused comparison in
# BENCH_micro.json never silently loses a side.
for arm in 'narrow_chain/fused' 'narrow_chain/unfused' \
  'plan_rewrites/hoist_on' 'plan_rewrites/hoist_off'; do
  grep -q "\"$arm\"" "$BENCH_SMOKE_OUT" || {
    echo "bench smoke is missing the $arm ablation row" >&2
    exit 1
  }
done
rm -f "$BENCH_SMOKE_OUT"

echo "== fig7 skew bench smoke (adaptive sweep) + BENCH_skew.json parse check"
SKEW_SMOKE_OUT="$(mktemp)"
BENCH_SKEW_OUT="$SKEW_SMOKE_OUT" cargo run -q --release -p matryoshka-bench --bin fig7_skew -- --smoke
cargo run -q --release -p matryoshka-bench --bin fig7_skew -- --validate "$SKEW_SMOKE_OUT"
rm -f "$SKEW_SMOKE_OUT"
# The committed artifact must stay parseable and keep both series.
cargo run -q --release -p matryoshka-bench --bin fig7_skew -- --validate BENCH_skew.json

echo "== recovery sweep smoke (fault model) + BENCH_recovery.json parse check"
# Fast loss/checkpoint gate (asserts losses occur and checkpoints shrink
# replay — see docs/FAULTS.md), then parse-check the committed artifact.
cargo run -q --release -p matryoshka-bench --bin recovery_sweep -- --smoke
cargo run -q --release -p matryoshka-bench --bin recovery_sweep -- --validate BENCH_recovery.json

echo "== docs link/anchor + mat-example check (tests/docs.rs)"
# Explicit rerun of the docs gate (also part of the workspace test run):
# every relative Markdown link/anchor must resolve and every fenced
# \`\`\`mat block must pass the static analyzer.
cargo test -q --test docs

echo "CI gate passed."
