#!/usr/bin/env bash
# Repository CI gate: formatting, lints (deny warnings), docs, build, tests.
# Run from the repository root: ./scripts/ci.sh
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo fmt --check"
cargo fmt --check

echo "== cargo clippy (deny warnings)"
cargo clippy --workspace --all-targets -- -D warnings

echo "== cargo doc --no-deps"
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps --workspace

echo "== cargo build --release"
cargo build --release

echo "== cargo test"
cargo test -q --workspace

echo "== static analyzer over shipped IR programs (matryoshka-check)"
# Every example program and every built-in task workload must pass the
# pre-lowering analyzer with no error-severity MAT0xx diagnostics.
cargo run -q --bin matryoshka-check -- --builtin examples/programs/*.mat

echo "== sanitizers (best effort: miri, then TSan, else skip)"
# The container has no network, so missing toolchain components (miri,
# rust-src for -Zbuild-std) cannot be installed on the fly; skip cleanly.
if cargo miri --version >/dev/null 2>&1 \
  && cargo miri test -p matryoshka-engine pool 2>/dev/null; then
  echo "miri: engine pool tests passed"
elif RUSTFLAGS="-Zsanitizer=thread" cargo +nightly test -p matryoshka-engine pool \
    -Zbuild-std --target "$(rustc -vV | sed -n 's/^host: //p')" 2>/dev/null; then
  echo "TSan: engine pool tests passed"
else
  echo "sanitizers unavailable in this toolchain (miri/rust-src not installed); skipping"
fi

echo "== bench smoke (micro harness, tiny sizes)"
BENCH_SMOKE_OUT="$(mktemp)"
BENCH_MICRO_OUT="$BENCH_SMOKE_OUT" cargo bench -p matryoshka-bench --bench micro -- --smoke
grep -q '"median_ms"' "$BENCH_SMOKE_OUT" || {
  echo "bench smoke did not emit machine-readable records to $BENCH_SMOKE_OUT" >&2
  exit 1
}
rm -f "$BENCH_SMOKE_OUT"

echo "CI gate passed."
