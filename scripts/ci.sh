#!/usr/bin/env bash
# Repository CI gate: formatting, lints (deny warnings), docs, build, tests.
# Run from the repository root: ./scripts/ci.sh
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo fmt --check"
cargo fmt --check

echo "== cargo clippy (deny warnings)"
cargo clippy --workspace --all-targets -- -D warnings

echo "== cargo doc --no-deps"
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps --workspace

echo "== cargo build --release"
cargo build --release

echo "== cargo test"
cargo test -q --workspace

echo "== bench smoke (micro harness, tiny sizes)"
BENCH_SMOKE_OUT="$(mktemp)"
BENCH_MICRO_OUT="$BENCH_SMOKE_OUT" cargo bench -p matryoshka-bench --bench micro -- --smoke
grep -q '"median_ms"' "$BENCH_SMOKE_OUT" || {
  echo "bench smoke did not emit machine-readable records to $BENCH_SMOKE_OUT" >&2
  exit 1
}
rm -f "$BENCH_SMOKE_OUT"

echo "CI gate passed."
